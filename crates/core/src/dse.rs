//! Exhaustive parallel design-space exploration (DSE) over the paper's
//! 6,656-choice dataflow space (Section III-C).
//!
//! The mapper of [`crate::mapper`] answers "which of *these* candidates is
//! best?"; this module answers the question the paper says mappers and DSE
//! tools actually need (Section I): **what is the true optimum of the full
//! enumerated space for this workload?** It does so with:
//!
//! * a streaming, chunked work queue over [`PatternSpace`] — workers claim
//!   index ranges from an atomic cursor, materialise each pattern on demand,
//!   concretise it with the balanced tile policy, and evaluate it; the space is
//!   never collected into a `Vec`;
//! * per-worker top-K reduction merged at join, with deterministic
//!   (thread-count-independent) tie-breaking by pattern index;
//! * optional seeding with the Table V presets and their CA companions
//!   (their hand-tuned tile policies are not always reachable by the balanced
//!   concretisation, so seeding guarantees the reported optimum is never worse
//!   than any preset);
//! * an optional second refinement stage that hill-climbs tile sizes around
//!   each surviving winner ([`crate::mapper::refine_tiles`]);
//! * a workload-keyed [`DseCache`] so repeated sweeps (e.g. the bench harness
//!   evaluating 12 knob points against the exhaustive optimum) never re-search
//!   the same workload.

use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Instant;

use crossbeam::thread;
use serde::{Deserialize, Serialize};

use omega_accel::AccelConfig;
use omega_dataflow::enumerate::PatternSpace;
use omega_dataflow::tiles::{choose_tiling, Cap, PhasePolicy};
use omega_dataflow::{Dim, GnnDataflow, GnnDataflowPattern, InterPhase, IntraPattern, MappingSpec};

use crate::evaluate::DseEval;
use crate::mapper::{refine_tiles, Objective};
use crate::{CostReport, GnnWorkload, PhaseSimCache, PreparedEval};

pub mod model;

/// Tuning knobs of an exhaustive exploration.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DseOptions {
    /// What to minimise.
    pub objective: Objective,
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// How many ranked winners to keep.
    pub top_k: usize,
    /// Hill-climbing steps per winner in the refinement stage (0 disables it).
    pub refine_steps: usize,
    /// Patterns per work-queue claim.
    pub chunk: usize,
    /// Also evaluate the Table V presets + CA companions as seeds, so the
    /// reported optimum is never worse than any preset's hand-tuned tiling.
    pub seed_presets: bool,
    /// Skip simulating candidates whose admissible cycle lower bound already
    /// exceeds the worst retained top-K score (active under the `Runtime`
    /// objective only; the ranked output is bit-identical either way —
    /// disable to exercise the brute-force reference path).
    pub prune: bool,
    /// Memoise phase simulations across candidates, so `Sequential`/`SP`
    /// sweeps pay for each *unique* phase configuration once (bit-identical
    /// results; disable to exercise the uncached reference path).
    pub phase_cache: bool,
    /// Maintain the full (runtime, energy, buffer-footprint) Pareto frontier
    /// in the same one-pass sweep instead of a single-objective top-K. The
    /// [`ExploreOutcome::frontier`] is filled (deterministically), pruning
    /// switches from the top-K runtime threshold to 3-axis bound-vector
    /// domination, and [`ExploreOutcome::ranked`] becomes the frontier in
    /// runtime order (its head is still the exact runtime optimum).
    pub pareto: bool,
}

impl Default for DseOptions {
    fn default() -> Self {
        DseOptions {
            objective: Objective::Runtime,
            threads: 4,
            top_k: 10,
            refine_steps: 0,
            chunk: 64,
            seed_presets: true,
            prune: true,
            phase_cache: true,
            pareto: false,
        }
    }
}

impl DseOptions {
    /// Default options for `objective`.
    pub fn new(objective: Objective) -> Self {
        DseOptions { objective, ..Default::default() }
    }
}

/// One ranked exploration winner.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct RankedDataflow {
    /// The concrete dataflow.
    pub dataflow: GnnDataflow,
    /// Its cost report.
    pub report: CostReport,
    /// Objective value (lower is better).
    pub score: f64,
    /// Index in the enumeration order, when the entry came from the pattern
    /// space (`None` for preset seeds and refined dataflows).
    pub pattern_index: Option<usize>,
}

/// One point of the (runtime, energy, buffer-footprint) Pareto frontier: no
/// other evaluated candidate is at least as good on every axis and strictly
/// better on one.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct ParetoPoint {
    /// The concrete dataflow.
    pub dataflow: GnnDataflow,
    /// Its cost report.
    pub report: CostReport,
    /// Runtime axis (cycles).
    pub runtime_cycles: u64,
    /// Energy axis (total pJ).
    pub energy_pj: f64,
    /// Buffer-footprint axis (peak on-chip working set, bytes).
    pub buffer_peak_bytes: u64,
    /// Index in the enumeration order (`None` for preset seeds).
    pub pattern_index: Option<usize>,
}

/// The result of one exhaustive exploration.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct ExploreOutcome {
    /// Winners, best first, deduplicated by concrete dataflow (≤ `top_k`).
    pub ranked: Vec<RankedDataflow>,
    /// The (runtime, energy, buffer-footprint) Pareto frontier in runtime
    /// order, when [`DseOptions::pareto`] is set (empty otherwise).
    /// Deterministic: the set of mutually non-dominated candidates is a
    /// property of the space, independent of threads, chunking, and pruning.
    pub frontier: Vec<ParetoPoint>,
    /// Size of the enumerated space (the paper's 6,656).
    pub space: usize,
    /// Successful cost-model evaluations (space + seeds + refinement probes).
    pub evaluated: usize,
    /// Candidates rejected by dataflow validation.
    pub skipped: usize,
    /// Candidates whose admissible cycle lower bound proved they cannot enter
    /// the ranked top-K, skipped without simulation ([`DseOptions::prune`]).
    pub pruned: usize,
    /// Phase simulations the explorer's [`PhaseSimCache`] actually ran —
    /// unique phase configurations (0 when the cache is disabled: direct
    /// simulations are not counted).
    pub phase_sims: usize,
    /// Phase-simulation lookups answered from the cache instead of re-running
    /// an engine (0 when [`DseOptions::phase_cache`] is off).
    pub phase_cache_hits: usize,
    /// Preset seeds evaluated.
    pub seeded: usize,
    /// Evaluations spent by the refinement stage.
    pub refine_evals: usize,
    /// Wall-clock of the exploration in milliseconds.
    pub elapsed_ms: f64,
    /// Worker threads used.
    pub threads: usize,
    /// Degree-class pass replays the summary-driven walk batched during this
    /// exploration (delta of the process-wide [`omega_accel::telemetry`]
    /// counter, summed over all worker threads) — each one is a whole
    /// row-block timeline the per-edge reference walk would have recomputed.
    /// 0 when the answer came from the outcome cache or the reference walk ran.
    pub class_replays: u64,
}

impl ExploreOutcome {
    /// The optimum, if any candidate evaluated successfully.
    pub fn best(&self) -> Option<&RankedDataflow> {
        self.ranked.first()
    }
}

/// The balanced concretisation policy used throughout the explorers:
/// round-robin growth over the dims the pattern allows to be spatial, with the
/// neighbour tile capped at the mean degree.
pub(crate) fn balanced_policy(p: &IntraPattern) -> PhasePolicy {
    let dims: Vec<Dim> = p
        .order()
        .dims()
        .iter()
        .enumerate()
        .filter(|&(i, _)| p.maps()[i] != MappingSpec::Temporal)
        .map(|(_, &d)| d)
        .collect();
    PhasePolicy::round_robin(&dims).with_cap(Dim::N, Cap::MeanDegreePow2)
}

/// Concretises an enumerated pattern for `workload`: balanced round-robin
/// growth over the dims the pattern allows to be spatial, the neighbour tile
/// capped at the mean degree, and a 50-50 PE split for PP patterns.
pub fn concretize_pattern(
    pattern: &GnnDataflowPattern,
    workload: &GnnWorkload,
    cfg: &AccelConfig,
) -> GnnDataflow {
    let ctx = workload.tile_context(pattern.phase_order);
    let (agg_pes, cmb_pes) = if pattern.inter == InterPhase::ParallelPipeline {
        (cfg.num_pes / 2, cfg.num_pes / 2)
    } else {
        (cfg.num_pes, cfg.num_pes)
    };
    GnnDataflow {
        inter: pattern.inter,
        phase_order: pattern.phase_order,
        agg: choose_tiling(&pattern.agg, &ctx, agg_pes, &balanced_policy(&pattern.agg)),
        cmb: choose_tiling(&pattern.cmb, &ctx, cmb_pes, &balanced_policy(&pattern.cmb)),
    }
}

/// Locks `m`, adopting the guard even when a previous holder panicked. Every
/// structure guarded this way (the Pareto frontiers, the phase-sim cache, the
/// [`DseCache`] state) stays structurally valid across any panic point, so the
/// poison flag only records that *some* request died — and a long-running
/// mapper process must keep serving after one request panics, not wedge on
/// `PoisonError` forever.
pub(crate) fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Total order on a `(score, tie-break index)` search key: `f64::total_cmp` on
/// the score — so a NaN objective value can never panic the search mid-sweep
/// (NaN sorts after every finite score and +∞) — then the index.
pub(crate) fn key_cmp(a: (f64, usize), b: (f64, usize)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

/// A candidate with its evaluation, as tracked inside the search (tie-broken by
/// `index` so results are independent of thread interleaving).
#[derive(Debug, Clone)]
struct Entry<C, R> {
    score: f64,
    index: usize,
    candidate: C,
    report: R,
}

impl<C, R> Entry<C, R> {
    fn key(&self) -> (f64, usize) {
        (self.score, self.index)
    }
}

/// Bounded best-K accumulator, kept sorted ascending by `(score, index)` and
/// deduplicated by candidate: capacity counts *distinct* candidates, with only
/// the best-keyed entry kept per candidate.
///
/// Distinctness is what makes [`TopK::worst_at_capacity`] a sound *global*
/// pruning threshold: once a worker retains `k` distinct candidates, any
/// candidate that cannot beat the worst of them can never appear in the final
/// ranked list (which also dedups by candidate), no matter which worker would
/// have evaluated it.
#[derive(Debug)]
struct TopK<C, R> {
    k: usize,
    entries: Vec<Entry<C, R>>,
}

impl<C: PartialEq, R> TopK<C, R> {
    fn new(k: usize) -> Self {
        TopK { k: k.max(1), entries: Vec::with_capacity(k.max(1) + 1) }
    }

    fn offer(&mut self, e: Entry<C, R>) {
        use std::cmp::Ordering::{Greater, Less};
        let key = e.key();
        if let Some(pos) = self.entries.iter().position(|x| x.candidate == e.candidate) {
            // Same candidate seen before: keep whichever entry sorts first.
            if key_cmp(self.entries[pos].key(), key) != Greater {
                return;
            }
            self.entries.remove(pos);
        } else if self.entries.len() == self.k {
            let worst = self.entries.last().expect("non-empty at capacity");
            if key_cmp(key, worst.key()) != Less {
                return;
            }
        }
        let pos = self.entries.partition_point(|x| key_cmp(x.key(), key) == Less);
        self.entries.insert(pos, e);
        self.entries.truncate(self.k);
    }

    /// The worst retained score once `k` distinct candidates are held —
    /// monotonically non-increasing over a worker's lifetime, hence safe to
    /// publish into the shared pruning threshold at any point.
    fn worst_at_capacity(&self) -> Option<f64> {
        (self.entries.len() == self.k).then(|| self.entries.last().expect("at capacity").score)
    }
}

/// `true` when `a` Pareto-dominates `b` (no worse everywhere, strictly better
/// somewhere; lower is better on every axis). NaN compares as "not better", so
/// a NaN-scored candidate can never dominate — it just accumulates harmlessly.
fn dominates(a: &[f64; 3], b: &[f64; 3]) -> bool {
    a.iter().zip(b).all(|(x, y)| x <= y) && a.iter().zip(b).any(|(x, y)| x < y)
}

/// The shared (mutex-guarded) Pareto-frontier accumulator of a `--pareto`
/// sweep: entries are mutually non-dominated axis vectors
/// `[runtime cycles, energy pJ, buffer-peak bytes]` with their candidates.
///
/// Order-invariant by construction: an insert is rejected only when an
/// existing entry dominates it, and it evicts every entry it dominates —
/// since dominance is transitive, the surviving set is exactly the
/// non-dominated subset of everything ever offered, regardless of the
/// interleaving. Equal vectors are all kept (neither dominates); the
/// finalisation dedups by candidate. Generic over the candidate/report pair:
/// [`explore`] accumulates dataflows, [`model::explore_model`] whole-model
/// mappings.
pub(crate) struct ParetoFront<C, R> {
    entries: Vec<Entry<C, (R, [f64; 3])>>,
}

impl<C: PartialEq, R> ParetoFront<C, R> {
    pub(crate) fn new() -> Self {
        ParetoFront { entries: Vec::new() }
    }

    /// `true` when some frontier point is *strictly* better than `bounds` on
    /// every axis. Sound to prune on: the axes of `bounds` are admissible
    /// lower bounds, so the candidate's true vector — component-wise ≥ — is
    /// dominated by that same point and can never join the frontier.
    pub(crate) fn strictly_dominates(&self, bounds: &[f64; 3]) -> bool {
        self.entries.iter().any(|e| e.report.1.iter().zip(bounds).all(|(x, y)| x < y))
    }

    /// Offers `(candidate, report, axes)` with tie-break `index`.
    pub(crate) fn offer(&mut self, index: usize, candidate: C, report: R, axes: [f64; 3]) {
        if self.entries.iter().any(|q| dominates(&q.report.1, &axes)) {
            return;
        }
        self.entries.retain(|q| !dominates(&axes, &q.report.1));
        self.entries.push(Entry { score: axes[0], index, candidate, report: (report, axes) });
    }

    /// The frontier in deterministic order: sorted by the axis vector then the
    /// tie-break index, deduplicated by candidate (a preset seed and its
    /// enumerated twin share axes; the enumerated copy's smaller index wins,
    /// keeping the in-space index populated). Each element is
    /// `(index, candidate, report, axes)`.
    pub(crate) fn into_sorted(mut self) -> Vec<(usize, C, R, [f64; 3])> {
        self.entries.sort_by(|a, b| {
            let (va, vb) = (&a.report.1, &b.report.1);
            va[0].total_cmp(&vb[0])
                .then(va[1].total_cmp(&vb[1]))
                .then(va[2].total_cmp(&vb[2]))
                .then(a.index.cmp(&b.index))
        });
        let mut out: Vec<(usize, C, R, [f64; 3])> = Vec::with_capacity(self.entries.len());
        for e in self.entries {
            if out.iter().any(|(_, c, _, _)| *c == e.candidate) {
                continue;
            }
            let (report, axes) = e.report;
            out.push((e.index, e.candidate, report, axes));
        }
        out
    }
}

/// Cooperative cancellation for long-running searches: a cheap, cloneable
/// flag checked by the parallel-search workers at every chunk claim. A serving
/// process hands one to each search it might abandon (deadline expiry,
/// shutdown), so an abandoned search stops burning workers within one chunk
/// (~64 candidate evaluations) instead of running to completion.
#[derive(Debug, Clone, Default)]
pub struct CancelToken(Arc<std::sync::atomic::AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Asks every search holding a clone of this token to stop.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether [`Self::cancel`] has been called.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::SeqCst)
    }
}

/// A scored candidate: `(score, tie-break index, dataflow, report)`.
pub(crate) type Scored = (f64, usize, GnnDataflow, CostReport);

/// A generic scored candidate: `(score, tie-break index, candidate, report)`.
pub(crate) type ScoredEntry<C, R> = (f64, usize, C, R);

/// How one candidate fared inside [`parallel_search`].
pub(crate) enum Verdict<R> {
    /// Evaluated successfully: `(objective value, report)`.
    Score(f64, R),
    /// Structurally invalid — counted as skipped, as if it never evaluated.
    Skip,
    /// Lower-bound-pruned against the shared threshold — simulation elided.
    Prune,
}

/// Shape of any streaming parallel candidate search.
pub(crate) struct ParallelJob {
    /// Winners to keep per worker (and overall).
    pub k: usize,
    pub threads: usize,
    /// Candidates per work-queue claim.
    pub chunk: usize,
    /// Starting value of the shared pruning threshold (`f64::INFINITY` when no
    /// pre-evaluated entries warrant one).
    pub init_threshold: f64,
    /// Cooperative cancellation, checked at every chunk claim (`None` = never
    /// cancelled). A cancelled search returns partial results the caller must
    /// discard — determinism only holds for completed sweeps.
    pub cancel: Option<CancelToken>,
}

/// Evaluates `count` candidates produced on demand by `gen` across scoped
/// workers pulling chunked ranges from an atomic cursor; `score` turns a
/// candidate (plus its enumeration index and the current pruning threshold)
/// into a [`Verdict`]. Returns the merged (unsorted) per-worker top-K lists
/// plus `(evaluated, skipped, pruned)` counts.
///
/// Workers share one atomic pruning threshold: whenever a worker holds `k`
/// *distinct* retained candidates it publishes its worst retained score
/// (`fetch_min` over the float's bit pattern — non-negative floats order like
/// their bits), and `score` may answer [`Verdict::Prune`] for any candidate
/// whose admissible lower bound exceeds the threshold it was handed. The
/// ranked outcome is bit-identical with pruning on or off; only the work
/// performed differs.
///
/// Generic over the candidate type: [`explore`] and [`crate::mapper::best_of`]
/// search [`GnnDataflow`]s, [`model::explore_model`] searches whole-model
/// mappings — all through this one deterministic (thread-count-invariant)
/// primitive.
pub(crate) fn parallel_search<C: Send + PartialEq, R: Send>(
    count: usize,
    gen: &(dyn Fn(usize) -> C + Sync),
    score: &(dyn Fn(&C, usize, f64) -> Verdict<R> + Sync),
    job: &ParallelJob,
) -> (Vec<ScoredEntry<C, R>>, usize, usize, usize) {
    if count == 0 {
        return (Vec::new(), 0, 0, 0);
    }
    let threads = job.threads.max(1).min(count);
    let cursor = AtomicUsize::new(0);
    let cursor = &cursor;
    let threshold = AtomicU64::new(job.init_threshold.max(0.0).to_bits());
    let threshold = &threshold;
    let run_worker = || -> (TopK<C, R>, usize, usize, usize) {
        let chunk = job.chunk.max(1);
        let mut top = TopK::new(job.k);
        let mut evaluated = 0usize;
        let mut skipped = 0usize;
        let mut pruned = 0usize;
        loop {
            if job.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                break;
            }
            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
            if start >= count {
                break;
            }
            for index in start..(start + chunk).min(count) {
                let candidate = gen(index);
                let thr = f64::from_bits(threshold.load(Ordering::Relaxed));
                match score(&candidate, index, thr) {
                    Verdict::Score(score, report) => {
                        evaluated += 1;
                        top.offer(Entry { score, index, candidate, report });
                        if let Some(worst) = top.worst_at_capacity() {
                            if worst >= 0.0 {
                                threshold.fetch_min(worst.to_bits(), Ordering::Relaxed);
                            }
                        }
                    }
                    Verdict::Skip => skipped += 1,
                    Verdict::Prune => pruned += 1,
                }
            }
        }
        (top, evaluated, skipped, pruned)
    };
    let results: Vec<(TopK<C, R>, usize, usize, usize)> = thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|_| s.spawn(|_| run_worker())).collect();
        handles.into_iter().map(|h| h.join().expect("dse worker panicked")).collect()
    })
    .expect("dse scope");

    let mut merged = Vec::new();
    let mut evaluated = 0;
    let mut skipped = 0;
    let mut pruned = 0;
    for (top, e, s, p) in results {
        evaluated += e;
        skipped += s;
        pruned += p;
        merged.extend(top.entries.into_iter().map(|e| (e.score, e.index, e.candidate, e.report)));
    }
    (merged, evaluated, skipped, pruned)
}

/// Shared parameters of a parallel *dataflow* candidate search.
pub(crate) struct SearchJob<'a> {
    pub workload: &'a GnnWorkload,
    pub cfg: &'a AccelConfig,
    pub objective: Objective,
    /// Winners to keep per worker (and overall).
    pub k: usize,
    pub threads: usize,
    /// Candidates per work-queue claim.
    pub chunk: usize,
}

/// [`parallel_search`] specialised to dataflow candidates scored by
/// [`evaluate`] — the primitive shared by [`explore`] (over the full pattern
/// space) and [`crate::mapper::best_of`] (over an explicit candidate slice).
pub(crate) fn parallel_top_k(
    count: usize,
    gen: &(dyn Fn(usize) -> GnnDataflow + Sync),
    job: &SearchJob<'_>,
) -> (Vec<Scored>, usize, usize) {
    let pjob = ParallelJob {
        k: job.k,
        threads: job.threads,
        chunk: job.chunk,
        init_threshold: f64::INFINITY,
        cancel: None,
    };
    let prep = PreparedEval::new(job.workload, job.cfg);
    let score = |dataflow: &GnnDataflow, _index: usize, _thr: f64| -> Verdict<CostReport> {
        dse_verdict(prep.evaluate_dse(dataflow, None, None), job.objective)
    };
    let (merged, evaluated, skipped, _pruned) = parallel_search(count, gen, &score, &pjob);
    (merged, evaluated, skipped)
}

/// Turns a [`DseEval`] into a search [`Verdict`], stripping the per-chunk
/// pipeline timelines before retention: ranked winners don't need them, and a
/// poorly-tiled PP candidate's marks run to millions of entries — dropping
/// them keeps per-worker top-K memory bounded. (Re-run [`evaluate`] on a
/// winner to recover its timeline.) Shared by [`parallel_top_k`] and
/// [`explore`] so the mapper and explorer paths cannot diverge.
fn dse_verdict(eval: DseEval, objective: Objective) -> Verdict<CostReport> {
    match eval {
        DseEval::Report(report) => {
            let mut report = *report;
            report.agg.chunk_marks = Vec::new();
            report.cmb.chunk_marks = Vec::new();
            if let Some(s) = report.sddmm.as_mut() {
                s.chunk_marks = Vec::new();
            }
            Verdict::Score(objective.score(&report), report)
        }
        DseEval::Invalid => Verdict::Skip,
        DseEval::Pruned => Verdict::Prune,
    }
}

/// Exhaustively searches the full 6,656-pattern space for `workload` on `cfg`.
///
/// Deterministic: the ranked result is independent of `threads` and `chunk`
/// (ties broken by enumeration index) — and of [`DseOptions::prune`] and
/// [`DseOptions::phase_cache`], which only change the work performed, never
/// the ranked output.
///
/// ```
/// use omega_core::dse::{explore, DseOptions};
/// use omega_core::mapper::Objective;
/// use omega_core::{AccelConfig, GnnWorkload};
///
/// let dataset = omega_graph::DatasetSpec::mutag().generate(1);
/// let workload = GnnWorkload::gcn_layer(&dataset, 16);
/// let outcome = explore(
///     &workload,
///     &AccelConfig::paper_default(),
///     &DseOptions { threads: 2, top_k: 3, ..DseOptions::new(Objective::Runtime) },
/// );
/// assert_eq!(outcome.space, 6_656);
/// let best = outcome.best().expect("the enumerated space is never empty");
/// assert!(best.report.total_cycles > 0);
/// // The optimum is seeded with every Table V preset, so it never loses to one.
/// assert!(outcome.ranked.windows(2).all(|w| w[0].score <= w[1].score));
/// ```
pub fn explore(workload: &GnnWorkload, cfg: &AccelConfig, opts: &DseOptions) -> ExploreOutcome {
    explore_cancellable(workload, cfg, opts, &CancelToken::new())
        .expect("a never-cancelled exploration always completes")
}

/// [`explore`] with cooperative cancellation: returns `None` — and stops
/// burning worker threads within one work-queue chunk — once `cancel` fires.
/// Partial results are discarded (determinism only holds for completed
/// sweeps); a `None` therefore means "no answer", never "a worse answer".
pub fn explore_cancellable(
    workload: &GnnWorkload,
    cfg: &AccelConfig,
    opts: &DseOptions,
    cancel: &CancelToken,
) -> Option<ExploreOutcome> {
    let t0 = Instant::now();
    if cancel.is_cancelled() {
        return None;
    }
    let replays0 = omega_accel::telemetry::class_replays();
    let space = PatternSpace::new();
    let total = space.len();
    let threads = opts.threads.max(1);
    let prep = PreparedEval::new(workload, cfg);
    let phase_cache = PhaseSimCache::new();
    let cache_ref = opts.phase_cache.then_some(&phase_cache);

    // Seed with the presets' hand-tuned concretisations *before* the sweep
    // (indices past the space keep tie-breaking deterministic and mark them as
    // non-enumerated). Seeds are unconditionally part of the final pool, so
    // under Runtime pruning their K-th best distinct score is a sound initial
    // threshold — the sweep can prune from candidate one.
    let mut seeds: Vec<Scored> = Vec::new();
    if opts.seed_presets {
        for (j, df) in crate::mapper::extended_candidates(workload, cfg).into_iter().enumerate() {
            if let DseEval::Report(report) = prep.evaluate_dse(&df, cache_ref, None) {
                let score = opts.objective.score(&report);
                seeds.push((score, total + j, df, *report));
            }
        }
    }
    let seeded = seeds.len();
    let pareto = opts.pareto;
    let pruning = opts.prune && opts.objective == Objective::Runtime && !pareto;
    let init_threshold =
        if pruning { kth_distinct_score(&seeds, opts.top_k) } else { f64::INFINITY };

    // In pareto mode the shared frontier starts from the seeds (they are part
    // of the final pool unconditionally), so 3-axis bound-vector domination
    // pruning can engage from candidate one. The single-objective top-K
    // threshold is disabled instead: a runtime-dominated candidate can still
    // be Pareto-optimal on energy or footprint.
    let front: Mutex<ParetoFront<GnnDataflow, CostReport>> = Mutex::new(ParetoFront::new());
    if pareto {
        let mut f = lock_recover(&front);
        for (_, index, df, report) in &seeds {
            f.offer(*index, *df, report.clone(), report_axes(report));
        }
    }

    let space_ref = &space;
    let gen = move |i: usize| concretize_pattern(&space_ref.get(i), workload, cfg);
    let prep_ref = &prep;
    let front_ref = &front;
    let score = move |dataflow: &GnnDataflow, index: usize, thr: f64| -> Verdict<CostReport> {
        let eval = if pareto {
            let prune_if = |bounds: [f64; 3]| {
                opts.prune
                    && lock_recover(front_ref).strictly_dominates(&bounds)
            };
            prep_ref.evaluate_dse_pareto(dataflow, cache_ref, &prune_if)
        } else {
            prep_ref.evaluate_dse(dataflow, cache_ref, pruning.then_some(thr))
        };
        let verdict = dse_verdict(eval, opts.objective);
        if pareto {
            if let Verdict::Score(_, report) = &verdict {
                lock_recover(front_ref).offer(
                    index,
                    *dataflow,
                    report.clone(),
                    report_axes(report),
                );
            }
        }
        verdict
    };
    let job = ParallelJob {
        k: opts.top_k,
        threads,
        chunk: opts.chunk,
        init_threshold,
        cancel: Some(cancel.clone()),
    };
    let (mut merged, mut evaluated, skipped, pruned) = parallel_search(total, &gen, &score, &job);
    if cancel.is_cancelled() {
        // The sweep stopped early: its partial top-K must not masquerade as
        // the exhaustive optimum.
        return None;
    }
    evaluated += seeded;
    merged.extend(seeds);

    let frontier = if pareto {
        front
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
            .into_sorted()
            .into_iter()
            .map(|(index, dataflow, report, axes)| ParetoPoint {
                dataflow,
                runtime_cycles: report.total_cycles,
                energy_pj: axes[1],
                buffer_peak_bytes: report.buffer_peak_bytes,
                report,
                pattern_index: (index < total).then_some(index),
            })
            .collect()
    } else {
        Vec::new()
    };
    let ranked = if pareto {
        // The frontier is already deduplicated and in runtime order; its head
        // is the exact runtime optimum (nothing can dominate the min-runtime
        // point without beating its runtime).
        frontier
            .iter()
            .take(opts.top_k)
            .map(|p| RankedDataflow {
                dataflow: p.dataflow,
                report: p.report.clone(),
                score: p.runtime_cycles as f64,
                pattern_index: p.pattern_index,
            })
            .collect()
    } else {
        rank(merged, opts.top_k, total)
    };

    // Refinement: hill-climb tile sizes around each surviving winner and
    // re-rank (refined entries can reshuffle or displace the unrefined ones).
    // Pareto mode skips it: hill-climbing is scalar-objective by construction.
    let mut refine_evals = 0;
    let ranked = if opts.refine_steps > 0 && !pareto {
        let mut pool: Vec<(f64, usize, GnnDataflow, CostReport)> = ranked
            .iter()
            .map(|r| {
                (r.score, r.pattern_index.unwrap_or(usize::MAX / 2), r.dataflow, r.report.clone())
            })
            .collect();
        for r in &ranked {
            if let Some(refined) =
                refine_tiles(&r.dataflow, workload, cfg, opts.objective, opts.refine_steps)
            {
                refine_evals += refined.evaluated;
                pool.push((refined.score, usize::MAX, refined.dataflow, refined.report));
            }
        }
        evaluated += refine_evals;
        rank(pool, opts.top_k, total)
    } else {
        ranked
    };

    Some(ExploreOutcome {
        ranked,
        frontier,
        space: total,
        evaluated,
        skipped,
        pruned,
        phase_sims: phase_cache.misses(),
        phase_cache_hits: phase_cache.hits(),
        seeded,
        refine_evals,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        threads,
        class_replays: omega_accel::telemetry::class_replays() - replays0,
    })
}

/// The Pareto axis vector of one evaluated dataflow: total cycles, total
/// energy (pJ), and the composed on-chip working-set peak (bytes).
fn report_axes(report: &CostReport) -> [f64; 3] {
    [report.total_cycles as f64, report.energy.total_pj(), report.buffer_peak_bytes as f64]
}

/// The `k`-th best distinct-dataflow score among pre-evaluated entries — the
/// sound initial pruning threshold derived from the preset seeds (they are in
/// the final pool unconditionally, so any candidate that cannot beat `k`
/// distinct seeds can never be ranked). `INFINITY` with fewer distinct seeds.
fn kth_distinct_score(seeds: &[Scored], k: usize) -> f64 {
    let mut sorted: Vec<&Scored> = seeds.iter().collect();
    sorted.sort_by(|a, b| key_cmp((a.0, a.1), (b.0, b.1)));
    let mut distinct: Vec<&GnnDataflow> = Vec::new();
    for s in sorted {
        if distinct.iter().any(|d| **d == s.2) {
            continue;
        }
        distinct.push(&s.2);
        if distinct.len() == k.max(1) {
            return s.0;
        }
    }
    f64::INFINITY
}

/// Sorts by `(score, index)`, deduplicates identical concrete dataflows, and
/// keeps the best `k`.
fn rank(
    mut pool: Vec<(f64, usize, GnnDataflow, CostReport)>,
    k: usize,
    space: usize,
) -> Vec<RankedDataflow> {
    pool.sort_by(|a, b| key_cmp((a.0, a.1), (b.0, b.1)));
    let mut out: Vec<RankedDataflow> = Vec::with_capacity(k);
    for (score, index, dataflow, report) in pool {
        if out.len() == k {
            break;
        }
        if out.iter().any(|r| r.dataflow == dataflow) {
            continue;
        }
        out.push(RankedDataflow {
            dataflow,
            report,
            score,
            pattern_index: (index < space).then_some(index),
        });
    }
    out
}

/// Default bound on cached outcomes per [`DseCache`]. Generous — an outcome is
/// a few hundred kilobytes at most, so the default caps the cache around a few
/// hundred megabytes — but *bounded*, so a daemon serving endlessly diverse
/// shapes cannot leak memory without limit.
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

/// Version tag of the persisted cache file; bump on any change to the entry
/// layout so stale files are rejected instead of misread.
/// v2: `ExploreOutcome` gained `class_replays`.
pub const CACHE_FILE_VERSION: u32 = 2;

/// Shape summary of a cached workload, persisted next to each outcome so a
/// serving process can warm-start an unseen shape from its nearest cached
/// neighbour ([`DseCache::warm_hint`]).
#[derive(Debug, Clone, PartialEq, Deserialize, Serialize)]
pub struct WorkloadProfile {
    /// Vertices `V`.
    pub v: u64,
    /// Input feature width `F`.
    pub f: u64,
    /// Output feature width `G`.
    pub g: u64,
    /// Adjacency non-zeros.
    pub nnz: u64,
    /// Mean vertex degree.
    pub mean_degree: f64,
    /// Maximum vertex degree.
    pub max_degree: u64,
    /// Attention heads (0 = no attention phase).
    pub heads: u64,
    /// Elementwise post-phase: 0 = none, 1 = activation, 2 = LayerNorm.
    pub post_op: u8,
}

impl WorkloadProfile {
    /// The profile of `workload`.
    pub fn of(workload: &GnnWorkload) -> Self {
        WorkloadProfile {
            v: workload.v as u64,
            f: workload.f as u64,
            g: workload.g as u64,
            nnz: workload.nnz,
            mean_degree: workload.mean_degree,
            max_degree: workload.max_degree as u64,
            heads: workload.attention.map_or(0, |a| a.heads as u64),
            post_op: post_op_byte(workload.post_op),
        }
    }

    /// Shape distance for nearest-neighbour warm starts: log-scale L2 over the
    /// magnitude axes (a 2× size difference counts the same everywhere), plus
    /// a large constant penalty per *structural* mismatch (attention or
    /// post-phase presence), so a GAT shape never warm-starts a GCN shape
    /// while any structurally compatible neighbour exists.
    pub fn distance(&self, other: &Self) -> f64 {
        let axis = |a: f64, b: f64| {
            let d = ((a + 1.0) / (b + 1.0)).ln();
            d * d
        };
        let mut d2 = axis(self.v as f64, other.v as f64)
            + axis(self.f as f64, other.f as f64)
            + axis(self.g as f64, other.g as f64)
            + axis(self.nnz as f64, other.nnz as f64)
            + axis(self.mean_degree, other.mean_degree)
            + axis(self.max_degree as f64, other.max_degree as f64);
        if (self.heads == 0) != (other.heads == 0) || self.post_op != other.post_op {
            d2 += 1e6;
        } else {
            d2 += axis(self.heads as f64, other.heads as f64);
        }
        d2.sqrt()
    }
}

/// [`GnnWorkload::post_op`] as the stable byte used by both the fingerprint
/// and the persisted [`WorkloadProfile`].
fn post_op_byte(op: Option<omega_accel::engine::ElementwiseOp>) -> u8 {
    match op {
        None => 0,
        Some(omega_accel::engine::ElementwiseOp::Activation) => 1,
        Some(omega_accel::engine::ElementwiseOp::LayerNorm) => 2,
    }
}

/// How a [`DseCache::explore_traced`] request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Answered from an already-cached entry.
    Hit,
    /// Blocked on an identical in-flight search and shared its result.
    Coalesced,
    /// Ran the underlying search.
    Searched,
}

/// A nearest-neighbour warm-start suggestion ([`DseCache::warm_hint`]).
#[derive(Debug, Clone)]
pub struct WarmHint {
    /// The neighbour's full outcome; its ranked dataflows are candidate
    /// mappings for the new shape (re-evaluate them on the actual workload).
    pub outcome: Arc<ExploreOutcome>,
    /// The neighbour's shape.
    pub profile: WorkloadProfile,
    /// [`WorkloadProfile::distance`] between the request and the neighbour.
    pub distance: f64,
}

#[derive(Debug)]
enum FlightState {
    Running,
    Done(Arc<ExploreOutcome>),
    /// The leader panicked before publishing; waiters retry (one becomes the
    /// new leader).
    Abandoned,
}

/// Single-flight rendezvous for one in-progress search.
#[derive(Debug)]
struct Flight {
    state: Mutex<FlightState>,
    cv: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight { state: Mutex::new(FlightState::Running), cv: Condvar::new() }
    }

    /// Blocks until the leader publishes; `None` when it abandoned.
    fn wait(&self) -> Option<Arc<ExploreOutcome>> {
        let mut st = lock_recover(&self.state);
        loop {
            match &*st {
                FlightState::Running => {
                    st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
                }
                FlightState::Done(outcome) => return Some(Arc::clone(outcome)),
                FlightState::Abandoned => return None,
            }
        }
    }

    fn finish(&self, state: FlightState) {
        *lock_recover(&self.state) = state;
        self.cv.notify_all();
    }
}

#[derive(Debug)]
struct CacheEntry {
    outcome: Arc<ExploreOutcome>,
    profile: WorkloadProfile,
    /// Tick of the last lookup that returned this entry (LRU age).
    last_used: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    entries: HashMap<u64, CacheEntry>,
    inflight: HashMap<u64, Arc<Flight>>,
    tick: u64,
}

/// On-disk form of one cache entry.
#[derive(Debug, Clone, Deserialize, Serialize)]
struct PersistedEntry {
    key: u64,
    profile: WorkloadProfile,
    outcome: ExploreOutcome,
}

/// On-disk form of a whole cache; `entries` are ordered least-recently-used
/// first, so reloading reproduces the eviction order.
#[derive(Debug, Clone, Deserialize, Serialize)]
struct PersistedCache {
    version: u32,
    entries: Vec<PersistedEntry>,
}

/// Checksum footer written as the last line of a persisted cache file:
/// the payload's FNV-1a digest and byte length, so a truncated or bit-flipped
/// file is detected at load instead of silently misread.
#[derive(Debug, Clone, Copy, Deserialize, Serialize)]
struct PersistedFooter {
    /// Footer discriminant (the cache file version).
    omega_cache_footer: u32,
    /// FNV-1a digest of the payload bytes.
    crc64: u64,
    /// Payload length in bytes.
    bytes: u64,
}

/// What [`DseCache::load_or_quarantine`] did with the persisted file.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Entries restored into the cache.
    pub loaded: usize,
    /// Where the corrupt file was moved, when validation failed.
    pub quarantined: Option<std::path::PathBuf>,
    /// Whether a stale `.tmp` leftover from a crashed save was deleted.
    pub cleaned_tmp: bool,
}

/// FNV-1a over `bytes` (the checksum of the persisted cache payload).
fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// A workload-keyed, bounded, concurrency-safe cache of exploration outcomes.
///
/// Keyed by everything the (deterministic) result depends on: the workload
/// fingerprint (dimensions and full degree sequence), the accelerator
/// configuration, and the result-affecting options (`objective`, `top_k`,
/// `refine_steps`, `seed_presets` — *not* `threads`/`chunk`). Repeated sweeps
/// over the same workloads hit the cache instead of re-searching.
///
/// Built to sit under a long-running mapper daemon:
///
/// * **single-flight** — concurrent requests for the same key block on one
///   search instead of racing duplicates ([`Self::explore_traced`] reports
///   which path a request took);
/// * **bounded** — at most [`Self::capacity`] entries, evicting the
///   least-recently-used ([`Self::evictions`] counts);
/// * **poison-proof** — a panicking request never wedges later ones (locks are
///   recovered, an abandoned flight is retried by its waiters);
/// * **persistent** — [`Self::save`] / [`Self::load`] round-trip the entries
///   through a versioned JSON file bit-identically, and
///   [`Self::warm_hint`] finds the nearest cached shape for warm starts.
#[derive(Debug)]
pub struct DseCache {
    state: Mutex<CacheState>,
    capacity: usize,
    searches: AtomicUsize,
    hits: AtomicUsize,
    coalesced: AtomicUsize,
    evictions: AtomicUsize,
    cancelled: AtomicUsize,
    quarantined: AtomicUsize,
}

impl Default for DseCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl DseCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to `capacity` entries (clamped to ≥ 1).
    pub fn with_capacity(capacity: usize) -> Self {
        DseCache {
            state: Mutex::new(CacheState::default()),
            capacity: capacity.max(1),
            searches: AtomicUsize::new(0),
            hits: AtomicUsize::new(0),
            coalesced: AtomicUsize::new(0),
            evictions: AtomicUsize::new(0),
            cancelled: AtomicUsize::new(0),
            quarantined: AtomicUsize::new(0),
        }
    }

    /// The process-wide shared cache (used by the bench sweeps and the
    /// serving path). Capacity defaults to [`DEFAULT_CACHE_CAPACITY`];
    /// the `OMEGA_DSE_CACHE_CAP` environment variable overrides it.
    pub fn global() -> &'static DseCache {
        static GLOBAL: OnceLock<DseCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let cap = std::env::var("OMEGA_DSE_CACHE_CAP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(DEFAULT_CACHE_CAPACITY);
            DseCache::with_capacity(cap)
        })
    }

    /// Cached entries.
    pub fn len(&self) -> usize {
        lock_recover(&self.state).entries.len()
    }

    /// `true` when nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum entries held before LRU eviction.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// *Completed* searches this cache has performed — incremented when a
    /// search finishes, so panicking searches and coalesced duplicates never
    /// inflate it. This is the observable that distinguishes "served from
    /// cache" from "re-searched", since a re-search of a known workload would
    /// not change [`Self::len`].
    pub fn searches(&self) -> usize {
        self.searches.load(Ordering::Relaxed)
    }

    /// Requests answered from a cached entry.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Requests that blocked on an identical in-flight search and shared its
    /// result instead of duplicating it.
    pub fn coalesced(&self) -> usize {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Entries evicted by the LRU bound.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Searches abandoned by cooperative cancellation
    /// ([`Self::explore_traced_cancellable`]) before they completed.
    pub fn cancelled(&self) -> usize {
        self.cancelled.load(Ordering::Relaxed)
    }

    /// Corrupt persisted cache files quarantined by
    /// [`Self::load_or_quarantine`] instead of loaded.
    pub fn quarantined(&self) -> usize {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Like [`explore`], but returns the cached outcome when this
    /// (workload, config, options) was searched before.
    pub fn explore(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
    ) -> Arc<ExploreOutcome> {
        self.explore_traced(workload, cfg, opts).0
    }

    /// [`Self::explore`] plus how the request was satisfied. Concurrent
    /// requests for the same key are single-flighted: exactly one runs the
    /// search, the rest block on it and share its outcome.
    pub fn explore_traced(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
    ) -> (Arc<ExploreOutcome>, CacheOutcome) {
        self.explore_traced_cancellable(workload, cfg, opts, &CancelToken::new())
            .expect("a never-cancelled cached exploration always completes")
    }

    /// [`Self::explore_traced`] with cooperative cancellation: `None` once
    /// `cancel` fires, whether this request was leading the search (the sweep
    /// stops within one work-queue chunk, the flight is abandoned, waiters
    /// retry) or waiting on another leader. A cancelled search inserts nothing
    /// into the cache and never inflates [`Self::searches`];
    /// [`Self::cancelled`] counts the abandonments.
    pub fn explore_traced_cancellable(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
        cancel: &CancelToken,
    ) -> Option<(Arc<ExploreOutcome>, CacheOutcome)> {
        let key = fingerprint(workload, cfg, opts);
        loop {
            enum Role {
                Wait(Arc<Flight>),
                Lead(Arc<Flight>),
            }
            let role = {
                let mut st = lock_recover(&self.state);
                st.tick += 1;
                let tick = st.tick;
                if let Some(entry) = st.entries.get_mut(&key) {
                    entry.last_used = tick;
                    let outcome = Arc::clone(&entry.outcome);
                    drop(st);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some((outcome, CacheOutcome::Hit));
                }
                if let Some(flight) = st.inflight.get(&key) {
                    Role::Wait(Arc::clone(flight))
                } else {
                    let flight = Arc::new(Flight::new());
                    st.inflight.insert(key, Arc::clone(&flight));
                    Role::Lead(flight)
                }
            };
            match role {
                Role::Wait(flight) => {
                    if let Some(outcome) = flight.wait() {
                        self.coalesced.fetch_add(1, Ordering::Relaxed);
                        return Some((outcome, CacheOutcome::Coalesced));
                    }
                    // The leader panicked or was cancelled before publishing;
                    // unless this waiter was itself cancelled, retry (it may
                    // become the new leader).
                    if cancel.is_cancelled() {
                        self.cancelled.fetch_add(1, Ordering::Relaxed);
                        return None;
                    }
                }
                Role::Lead(flight) => {
                    let lead = FlightLead { cache: self, key, flight: &flight, done: false };
                    match explore_cancellable(workload, cfg, opts, cancel) {
                        Some(outcome) => {
                            let outcome = Arc::new(outcome);
                            lead.complete(Arc::clone(&outcome), WorkloadProfile::of(workload));
                            return Some((outcome, CacheOutcome::Searched));
                        }
                        None => {
                            // Dropping the lead abandons the flight, so any
                            // waiters retry instead of blocking forever.
                            drop(lead);
                            self.cancelled.fetch_add(1, Ordering::Relaxed);
                            return None;
                        }
                    }
                }
            }
        }
    }

    /// A cache probe that does *not* search on miss. `Some` counts as a hit
    /// and refreshes the entry's LRU position.
    pub fn lookup(
        &self,
        workload: &GnnWorkload,
        cfg: &AccelConfig,
        opts: &DseOptions,
    ) -> Option<Arc<ExploreOutcome>> {
        let key = fingerprint(workload, cfg, opts);
        let mut st = lock_recover(&self.state);
        st.tick += 1;
        let tick = st.tick;
        let outcome = st.entries.get_mut(&key).map(|entry| {
            entry.last_used = tick;
            Arc::clone(&entry.outcome)
        });
        drop(st);
        if outcome.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// The cached outcome whose workload shape is nearest to `workload`
    /// (smallest [`WorkloadProfile::distance`]; ties broken by key for
    /// determinism). `None` when nothing is cached. The caller re-evaluates
    /// the hinted ranked dataflows on the actual workload — a handful of
    /// cost-model calls instead of a full search.
    pub fn warm_hint(&self, workload: &GnnWorkload) -> Option<WarmHint> {
        let profile = WorkloadProfile::of(workload);
        let st = lock_recover(&self.state);
        st.entries
            .iter()
            .map(|(key, entry)| (entry.profile.distance(&profile), *key, entry))
            .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
            .map(|(distance, _, entry)| WarmHint {
                outcome: Arc::clone(&entry.outcome),
                profile: entry.profile.clone(),
                distance,
            })
    }

    /// Inserts under the held lock, evicting least-recently-used entries to
    /// stay within capacity (never the key being inserted).
    fn insert_locked(
        &self,
        st: &mut CacheState,
        key: u64,
        outcome: Arc<ExploreOutcome>,
        profile: WorkloadProfile,
    ) {
        st.tick += 1;
        if !st.entries.contains_key(&key) {
            while st.entries.len() >= self.capacity {
                let victim = st
                    .entries
                    .iter()
                    .min_by_key(|(k, e)| (e.last_used, **k))
                    .map(|(k, _)| *k);
                match victim {
                    Some(k) => {
                        st.entries.remove(&k);
                        self.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        let tick = st.tick;
        st.entries.insert(key, CacheEntry { outcome, profile, last_used: tick });
    }

    /// Writes every cached entry to `path` as versioned JSON (atomically:
    /// temp file + rename), least-recently-used first so a reload preserves
    /// the eviction order, followed by a checksum footer line so
    /// [`Self::load_into`] detects truncated or corrupted files instead of
    /// misreading them.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        self.save_with_crash_point(path, false)
    }

    /// [`Self::save`] with a deterministic crash injected between writing the
    /// temp file and renaming it over `path` — the window a `kill -9` during
    /// save leaves behind. Fault-injection harnesses use it to prove the
    /// recovery path: the original file survives untouched and the leftover
    /// `.tmp` is cleaned up (never loaded) by [`Self::load_or_quarantine`].
    pub fn save_with_crash_point(&self, path: &Path, crash_before_rename: bool) -> io::Result<()> {
        let snapshot = {
            let st = lock_recover(&self.state);
            let mut rows: Vec<(&u64, &CacheEntry)> = st.entries.iter().collect();
            rows.sort_by_key(|(k, e)| (e.last_used, **k));
            PersistedCache {
                version: CACHE_FILE_VERSION,
                entries: rows
                    .into_iter()
                    .map(|(key, entry)| PersistedEntry {
                        key: *key,
                        profile: entry.profile.clone(),
                        outcome: (*entry.outcome).clone(),
                    })
                    .collect(),
            }
        };
        let payload = serde_json::to_string(&snapshot).map_err(io::Error::other)?;
        let footer = PersistedFooter {
            omega_cache_footer: CACHE_FILE_VERSION,
            crc64: fnv1a_64(payload.as_bytes()),
            bytes: payload.len() as u64,
        };
        let footer_json = serde_json::to_string(&footer).map_err(io::Error::other)?;
        let tmp = path.with_extension("tmp");
        std::fs::write(&tmp, format!("{payload}\n{footer_json}\n"))?;
        if crash_before_rename {
            panic!("injected fault: crash between cache tmp write and rename");
        }
        std::fs::rename(&tmp, path)
    }

    /// Merges the entries persisted at `path` into this cache (evicting LRU
    /// entries if the merge exceeds capacity). Returns how many entries the
    /// file held. Fails with `InvalidData` on a version mismatch, a malformed
    /// or truncated file, or a checksum-footer mismatch — serving processes
    /// that must survive a corrupt file wrap this in
    /// [`Self::load_or_quarantine`].
    pub fn load_into(&self, path: &Path) -> io::Result<usize> {
        let invalid = |msg: String| io::Error::new(io::ErrorKind::InvalidData, msg);
        let text = std::fs::read_to_string(path)?;
        // Footer-bearing layout: `<payload JSON>\n<footer JSON>\n`. A file
        // without a parseable footer line falls back to parsing the whole
        // text as a (pre-checksum, PR 8) payload — truncation or corruption
        // then surfaces as a JSON parse error.
        let stripped = text.trim_end_matches(['\n', '\r']);
        let payload: &str = match stripped
            .rfind('\n')
            .map(|i| (&stripped[..i], &stripped[i + 1..]))
            .and_then(|(body, tail)| {
                serde_json::from_str::<PersistedFooter>(tail).ok().map(|f| (body, f))
            }) {
            Some((body, footer)) => {
                if footer.bytes != body.len() as u64 {
                    return Err(invalid(format!(
                        "cache file truncated: footer expects {} payload bytes, found {}",
                        footer.bytes,
                        body.len()
                    )));
                }
                if footer.crc64 != fnv1a_64(body.as_bytes()) {
                    return Err(invalid(
                        "cache file corrupted: payload checksum does not match footer".into(),
                    ));
                }
                body
            }
            None => stripped,
        };
        let parsed: PersistedCache = serde_json::from_str(payload)
            .map_err(|e| invalid(format!("bad cache file: {e}")))?;
        if parsed.version != CACHE_FILE_VERSION {
            return Err(invalid(format!(
                "cache file version {} (this build reads {})",
                parsed.version, CACHE_FILE_VERSION
            )));
        }
        let count = parsed.entries.len();
        let mut st = lock_recover(&self.state);
        for entry in parsed.entries {
            self.insert_locked(&mut st, entry.key, Arc::new(entry.outcome), entry.profile);
        }
        Ok(count)
    }

    /// The serving-path load: never aborts on a bad file. A missing file is a
    /// cold start; stale `.tmp` leftovers from a crash mid-save are deleted
    /// (never loaded); a file that fails validation ([`Self::load_into`]'s
    /// `InvalidData`) is renamed aside to `<path>.quarantined` — preserved for
    /// inspection, counted by [`Self::quarantined`] — and serving starts cold
    /// to rebuild it. Only genuine I/O errors (permissions, disk) propagate.
    pub fn load_or_quarantine(&self, path: &Path) -> io::Result<LoadReport> {
        let tmp = path.with_extension("tmp");
        let cleaned_tmp = std::fs::remove_file(&tmp).is_ok();
        if !path.exists() {
            return Ok(LoadReport { loaded: 0, quarantined: None, cleaned_tmp });
        }
        match self.load_into(path) {
            Ok(loaded) => Ok(LoadReport { loaded, quarantined: None, cleaned_tmp }),
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                let quarantine = path.with_extension("quarantined");
                std::fs::rename(path, &quarantine)?;
                self.quarantined.fetch_add(1, Ordering::Relaxed);
                Ok(LoadReport { loaded: 0, quarantined: Some(quarantine), cleaned_tmp })
            }
            Err(e) => Err(e),
        }
    }

    /// A fresh default-capacity cache loaded from `path`.
    pub fn load(path: &Path) -> io::Result<DseCache> {
        let cache = DseCache::new();
        cache.load_into(path)?;
        Ok(cache)
    }
}

/// Drop guard held by a single-flight leader. Completing publishes the outcome
/// and counts the search; dropping without completing (the search panicked)
/// abandons the flight so waiters retry instead of blocking forever.
struct FlightLead<'a> {
    cache: &'a DseCache,
    key: u64,
    flight: &'a Flight,
    done: bool,
}

impl FlightLead<'_> {
    fn complete(mut self, outcome: Arc<ExploreOutcome>, profile: WorkloadProfile) {
        self.done = true;
        {
            let mut st = lock_recover(&self.cache.state);
            st.inflight.remove(&self.key);
            self.cache.insert_locked(&mut st, self.key, Arc::clone(&outcome), profile);
        }
        // Counted at completion, so a panicking search never inflates it.
        self.cache.searches.fetch_add(1, Ordering::Relaxed);
        self.flight.finish(FlightState::Done(outcome));
    }
}

impl Drop for FlightLead<'_> {
    fn drop(&mut self) {
        if self.done {
            return;
        }
        lock_recover(&self.cache.state).inflight.remove(&self.key);
        self.flight.finish(FlightState::Abandoned);
    }
}

/// FNV-1a fingerprint of everything a deterministic exploration depends on.
fn fingerprint(workload: &GnnWorkload, cfg: &AccelConfig, opts: &DseOptions) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
    };
    // The workload *name* is deliberately not hashed: it is cosmetic (layer
    // workloads are named "Cora[L0]" etc.), and the dimensions plus the full
    // degree sequence below already determine the search result — so a model
    // layer shaped like a plain dataset workload shares its cache entry.
    for x in [workload.v as u64, workload.f as u64, workload.g as u64, workload.nnz] {
        eat(&x.to_le_bytes());
    }
    // Attention changes the evaluation (an extra SDDMM phase and its head
    // count), so a GAT layer must never share a cache entry with a plain
    // layer of the same shape.
    eat(&(workload.attention.map_or(0, |a| a.heads as u64)).to_le_bytes());
    // Likewise the elementwise post-phase: an activation/LayerNorm suffix
    // changes every candidate's cycles, so it must key the cached outcome.
    eat(&[workload.post_op.map_or(0u8, |op| match op {
        omega_accel::engine::ElementwiseOp::Activation => 1,
        omega_accel::engine::ElementwiseOp::LayerNorm => 2,
    })]);
    for &d in &workload.degrees {
        eat(&(d as u64).to_le_bytes());
    }
    // The accelerator config, field by field. (This replaces a
    // `serde_json::to_string` round-trip that ran on every cache lookup and
    // silently degraded the key to "" on serialization failure.)
    for x in [
        cfg.num_pes as u64,
        cfg.rf_bytes_per_pe as u64,
        cfg.word_bytes as u64,
        cfg.gb_bytes as u64,
        cfg.gb_bank_bytes as u64,
        cfg.dist_bandwidth as u64,
        cfg.red_bandwidth as u64,
        cfg.dist_latency,
        cfg.tree_latency_per_level,
    ] {
        eat(&x.to_le_bytes());
    }
    eat(&[
        cfg.knobs.psum_group_sharing as u8,
        cfg.knobs.fractional_spill as u8,
        cfg.knobs.per_pass_fill as u8,
        cfg.knobs.enforce_capacity as u8,
        cfg.knobs.reference_walk as u8,
    ]);
    // The result-affecting options (threads/chunk do not affect the
    // deterministic ranked result, so two searches differing only there share
    // a key; prune/phase_cache keep the ranked list bit-identical but change
    // the recorded work counters, so they key the cached outcome too).
    eat(&[match opts.objective {
        Objective::Runtime => 0u8,
        Objective::Energy => 1,
        Objective::Edp => 2,
    }]);
    for x in [
        opts.top_k as u64,
        opts.refine_steps as u64,
        opts.seed_presets as u64,
        opts.prune as u64,
        opts.phase_cache as u64,
        opts.pareto as u64,
    ] {
        eat(&x.to_le_bytes());
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use omega_graph::DatasetSpec;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    fn wl() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16)
    }

    fn quick_opts() -> DseOptions {
        DseOptions { threads: 2, top_k: 5, ..DseOptions::new(Objective::Runtime) }
    }

    #[test]
    fn explore_covers_the_whole_space() {
        let cfg = AccelConfig::paper_default();
        let out = explore(&wl(), &cfg, &quick_opts());
        assert_eq!(out.space, 6656);
        // Every pattern either evaluated, was rejected by validation, or was
        // lower-bound-pruned; seeds come on top.
        assert_eq!(out.evaluated - out.seeded + out.skipped + out.pruned, 6656);
        assert_eq!(out.seeded, 12); // 9 presets + 3 CA companions
        // The optimisation machinery actually engaged: candidates were pruned
        // and Sequential/SP candidates shared phase simulations.
        assert!(out.pruned > 0, "no candidate was lower-bound-pruned");
        assert!(out.phase_cache_hits > 0, "no phase simulation was reused");
        assert!(out.phase_sims < 2 * (out.evaluated + out.pruned), "cache ran more sims than brute force");
        assert!(out.ranked.len() <= 5);
        assert!(!out.ranked.is_empty());
        // Ranked ascending, deduplicated.
        for w in out.ranked.windows(2) {
            assert!(w[0].score <= w[1].score);
            assert!(w[0].dataflow != w[1].dataflow);
        }
    }

    #[test]
    fn explore_is_thread_count_invariant() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let a = explore(&workload, &cfg, &DseOptions { threads: 1, ..quick_opts() });
        let b = explore(&workload, &cfg, &DseOptions { threads: 4, chunk: 17, ..quick_opts() });
        // How *far* pruning gets depends on thread interleaving, but what a
        // candidate can be pruned *for* does not: evaluated + pruned and the
        // validation skips are invariant, and so is the ranked output.
        assert_eq!(a.evaluated + a.pruned, b.evaluated + b.pruned);
        assert_eq!(a.skipped, b.skipped);
        let key = |o: &ExploreOutcome| -> Vec<(String, u64, Option<usize>)> {
            o.ranked
                .iter()
                .map(|r| (r.dataflow.to_string(), r.report.total_cycles, r.pattern_index))
                .collect()
        };
        assert_eq!(key(&a), key(&b));
    }

    #[test]
    fn pruned_and_cached_explore_is_bit_identical_to_reference() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let fast = explore(&workload, &cfg, &quick_opts());
        let reference = explore(
            &workload,
            &cfg,
            &DseOptions { prune: false, phase_cache: false, ..quick_opts() },
        );
        // The reference path really is brute force…
        assert_eq!(reference.pruned, 0);
        assert_eq!(reference.phase_cache_hits, 0);
        assert_eq!(reference.phase_sims, 0);
        // …and the optimised path reproduces its ranked output bit for bit,
        // with consistent accounting.
        assert_eq!(fast.evaluated + fast.pruned, reference.evaluated);
        assert_eq!(fast.skipped, reference.skipped);
        let key = |o: &ExploreOutcome| -> Vec<(String, u64, u64, Option<usize>)> {
            o.ranked
                .iter()
                .map(|r| {
                    (r.dataflow.to_string(), r.score.to_bits(), r.report.total_cycles, r.pattern_index)
                })
                .collect()
        };
        assert_eq!(key(&fast), key(&reference));
    }

    #[test]
    fn nan_scores_never_panic_and_sort_last() {
        // A NaN objective score must not panic the sort or the top-K — it
        // ranks after every finite score (f64::total_cmp).
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let df = concretize_pattern(&PatternSpace::new().get(0), &workload, &cfg);
        let report = evaluate(&workload, &df, &cfg).unwrap();
        let mut top: TopK<usize, CostReport> = TopK::new(2);
        for (score, index) in [(f64::NAN, 0usize), (2.0, 1), (1.0, 2)] {
            // Distinct candidates (the index itself), so dedup stays out of
            // the way and the ordering alone is under test.
            top.offer(Entry { score, index, candidate: index, report: report.clone() });
        }
        let order: Vec<usize> = top.entries.iter().map(|e| e.index).collect();
        assert_eq!(order, vec![2, 1]); // NaN fell off the end of the top-2
        let pool = vec![
            (f64::NAN, 0usize, df, report.clone()),
            (1.0, 1, df, report.clone()),
        ];
        let ranked = rank(pool, 2, 10);
        assert_eq!(ranked[0].score, 1.0); // no panic, finite first
    }

    #[test]
    fn explore_winner_beats_every_preset() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let out = explore(&workload, &cfg, &quick_opts());
        let best = out.best().expect("winner");
        for df in crate::mapper::extended_candidates(&workload, &cfg) {
            let r = evaluate(&workload, &df, &cfg).expect("presets evaluate");
            assert!(best.score <= r.total_cycles as f64, "{df}");
        }
    }

    #[test]
    fn refinement_never_worsens_the_optimum() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let plain = explore(&workload, &cfg, &quick_opts());
        let refined =
            explore(&workload, &cfg, &DseOptions { refine_steps: 8, ..quick_opts() });
        assert!(refined.best().unwrap().score <= plain.best().unwrap().score);
        assert!(refined.refine_evals > 0);
        assert!(refined.evaluated > plain.evaluated);
    }

    #[test]
    fn cache_returns_shared_outcome() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let cache = DseCache::new();
        let a = cache.explore(&workload, &cfg, &quick_opts());
        let b = cache.explore(&workload, &cfg, &quick_opts());
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        // Thread count does not key the cache…
        let c = cache.explore(&workload, &cfg, &DseOptions { threads: 7, ..quick_opts() });
        assert!(Arc::ptr_eq(&a, &c));
        // …but the objective does.
        let d = cache.explore(
            &workload,
            &cfg,
            &DseOptions { objective: Objective::Edp, threads: 2, top_k: 5, ..Default::default() },
        );
        assert!(!Arc::ptr_eq(&a, &d));
        assert_eq!(cache.len(), 2);
        // Every request above was either a completed search or a hit, counted
        // at the right moment.
        assert_eq!(cache.searches(), 2);
        assert_eq!(cache.hits(), 2);
    }

    #[test]
    fn cache_single_flights_concurrent_identical_requests() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let cache = DseCache::new();
        let opts = quick_opts();
        const N: usize = 8;
        let results: Vec<(Arc<ExploreOutcome>, CacheOutcome)> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..N)
                .map(|_| s.spawn(|| cache.explore_traced(&workload, &cfg, &opts)))
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        // Exactly one underlying search ran, no matter how the threads raced;
        // everyone shares the same outcome allocation.
        assert_eq!(cache.searches(), 1, "duplicate searches ran");
        let searched =
            results.iter().filter(|(_, how)| *how == CacheOutcome::Searched).count();
        assert_eq!(searched, 1);
        assert_eq!(cache.hits() + cache.coalesced(), N - 1);
        for (outcome, _) in &results {
            assert!(Arc::ptr_eq(outcome, &results[0].0));
        }
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_recovers_from_poisoned_lock() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let cache = DseCache::new();
        cache.explore(&workload, &cfg, &quick_opts());
        // Inject a panic while holding the state lock, poisoning it.
        let injected = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = cache.state.lock().unwrap();
                panic!("injected panic while holding the cache lock");
            })
            .join()
        });
        assert!(injected.is_err());
        assert!(cache.state.is_poisoned());
        // The cache keeps serving: hits, fresh searches, saves.
        assert_eq!(cache.len(), 1);
        let (_, how) = cache.explore_traced(&workload, &cfg, &quick_opts());
        assert_eq!(how, CacheOutcome::Hit);
        let fresh = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 32);
        let (_, how) = cache.explore_traced(&fresh, &cfg, &quick_opts());
        assert_eq!(how, CacheOutcome::Searched);
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn abandoned_flight_unblocks_waiters_without_counting_a_search() {
        // Unit-level injection of the leader-panicked path: a FlightLead
        // dropped without completing (what unwinding through the search does).
        let cache = DseCache::new();
        let key = 42u64;
        let flight = Arc::new(Flight::new());
        lock_recover(&cache.state).inflight.insert(key, Arc::clone(&flight));
        let lead = FlightLead { cache: &cache, key, flight: &flight, done: false };
        drop(lead);
        // Waiters observe the abandonment (and would retry as leaders) rather
        // than blocking forever; the dead flight is deregistered; the search
        // counter never moved because nothing completed.
        assert!(flight.wait().is_none());
        assert!(lock_recover(&cache.state).inflight.is_empty());
        assert_eq!(cache.searches(), 0);
    }

    #[test]
    fn cache_evicts_least_recently_used_first() {
        let cfg = AccelConfig::paper_default();
        let cache = DseCache::with_capacity(2);
        let dataset = DatasetSpec::mutag().generate(4);
        let (a, b, c) = (
            GnnWorkload::gcn_layer(&dataset, 8),
            GnnWorkload::gcn_layer(&dataset, 16),
            GnnWorkload::gcn_layer(&dataset, 32),
        );
        let opts = quick_opts();
        cache.explore(&a, &cfg, &opts);
        cache.explore(&b, &cfg, &opts);
        assert_eq!((cache.len(), cache.evictions()), (2, 0));
        // Touch `a`, making `b` the least recently used…
        assert!(cache.lookup(&a, &cfg, &opts).is_some());
        // …so inserting `c` evicts `b`, not `a`.
        cache.explore(&c, &cfg, &opts);
        assert_eq!((cache.len(), cache.evictions()), (2, 1));
        assert!(cache.lookup(&a, &cfg, &opts).is_some());
        assert!(cache.lookup(&b, &cfg, &opts).is_none());
        assert!(cache.lookup(&c, &cfg, &opts).is_some());
    }

    #[test]
    fn cache_persistence_round_trips_bit_identically() {
        let cfg = AccelConfig::paper_default();
        let cache = DseCache::new();
        let dataset = DatasetSpec::mutag().generate(4);
        let (a, b) =
            (GnnWorkload::gcn_layer(&dataset, 8), GnnWorkload::gcn_layer(&dataset, 16));
        let opts = quick_opts();
        let out_a = cache.explore(&a, &cfg, &opts);
        let out_b = cache.explore(&b, &cfg, &opts);

        let dir = std::env::temp_dir();
        let path = dir.join(format!("omega-dse-cache-rt-{}.json", std::process::id()));
        let path2 = dir.join(format!("omega-dse-cache-rt2-{}.json", std::process::id()));
        cache.save(&path).expect("save");

        let loaded = DseCache::load(&path).expect("load");
        assert_eq!(loaded.len(), 2);
        // Both workloads hit without searching, and the reloaded outcomes are
        // bit-identical to the originals (JSON equality covers every ranked
        // score bit: floats round-trip exactly through the writer/parser).
        let (back_a, how_a) = loaded.explore_traced(&a, &cfg, &opts);
        let (back_b, how_b) = loaded.explore_traced(&b, &cfg, &opts);
        assert_eq!((how_a, how_b), (CacheOutcome::Hit, CacheOutcome::Hit));
        assert_eq!(loaded.searches(), 0);
        for (orig, back) in [(&out_a, &back_a), (&out_b, &back_b)] {
            assert_eq!(
                serde_json::to_string(&**orig).unwrap(),
                serde_json::to_string(&**back).unwrap()
            );
        }
        // A second save of the reloaded cache reproduces the file byte for
        // byte (entry order included).
        loaded.save(&path2).expect("re-save");
        assert_eq!(
            std::fs::read(&path).unwrap(),
            std::fs::read(&path2).unwrap(),
            "persisted cache not byte-stable across a load/save cycle"
        );

        // Version mismatches are rejected instead of misread.
        let text = std::fs::read_to_string(&path).unwrap();
        let bumped =
            text.replacen(&format!("\"version\":{CACHE_FILE_VERSION}"), "\"version\":999", 1);
        assert_ne!(text, bumped, "version field not found in persisted file");
        std::fs::write(&path, bumped).unwrap();
        let err = DseCache::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }

    #[test]
    fn cancelled_explore_returns_none_not_a_partial_answer() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        // A token cancelled before the sweep starts: no answer at all, rather
        // than an empty or partial ranked list masquerading as the optimum.
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(explore_cancellable(&workload, &cfg, &quick_opts(), &cancel).is_none());
        // A fresh token completes and matches the plain entry point bit for bit.
        let some = explore_cancellable(&workload, &cfg, &quick_opts(), &CancelToken::new())
            .expect("uncancelled search completes");
        let plain = explore(&workload, &cfg, &quick_opts());
        assert_eq!(
            some.ranked.iter().map(|r| r.dataflow.to_string()).collect::<Vec<_>>(),
            plain.ranked.iter().map(|r| r.dataflow.to_string()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn cancelled_cache_search_inserts_nothing_and_counts() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let cache = DseCache::new();
        let cancel = CancelToken::new();
        cancel.cancel();
        assert!(cache
            .explore_traced_cancellable(&workload, &cfg, &quick_opts(), &cancel)
            .is_none());
        assert_eq!(cache.len(), 0, "a cancelled search must not populate the cache");
        assert_eq!(cache.searches(), 0);
        assert_eq!(cache.cancelled(), 1);
        // The abandoned flight is deregistered: a later request leads afresh.
        let (_, how) = cache.explore_traced(&workload, &cfg, &quick_opts());
        assert_eq!(how, CacheOutcome::Searched);
        assert_eq!(cache.searches(), 1);
        // A cancelled request whose key is already cached is still a hit:
        // answering from memory needs no search to abandon.
        let got = cache.explore_traced_cancellable(&workload, &cfg, &quick_opts(), &cancel);
        assert_eq!(got.map(|(_, how)| how), Some(CacheOutcome::Hit));
    }

    #[test]
    fn load_into_rejects_truncated_corrupted_and_garbage_files() {
        let cfg = AccelConfig::paper_default();
        let cache = DseCache::new();
        cache.explore(&wl(), &cfg, &quick_opts());
        let dir = std::env::temp_dir();
        let path = dir.join(format!("omega-dse-cache-corrupt-{}.json", std::process::id()));
        cache.save(&path).expect("save");
        let good = std::fs::read_to_string(&path).unwrap();

        // Truncation anywhere in the payload: the footer length check fires.
        std::fs::write(&path, &good[..good.len() / 2]).unwrap();
        let err = DseCache::new().load_into(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // A single flipped payload byte: the checksum fires even though the
        // file is still length-consistent, well-formed JSON.
        let flipped = good.replacen("\"v\":", "\"w\":", 1);
        assert_ne!(good, flipped);
        std::fs::write(&path, &flipped).unwrap();
        let err = DseCache::new().load_into(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("checksum"), "{err}");

        // Garbage that was never a cache file.
        std::fs::write(&path, "!!! not a cache file !!!").unwrap();
        let err = DseCache::new().load_into(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);

        // And the untouched file still round-trips.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(DseCache::new().load_into(&path).unwrap(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_or_quarantine_survives_corruption_and_cleans_stale_tmp() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("omega-dse-cache-quar-{}.json", std::process::id()));
        let tmp = path.with_extension("tmp");
        let quarantine = path.with_extension("quarantined");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&quarantine);

        // Missing file: a cold start, and a stale tmp from a crashed save is
        // deleted without ever being loaded.
        std::fs::write(&tmp, "half-written snapshot").unwrap();
        let cache = DseCache::new();
        let report = cache.load_or_quarantine(&path).expect("cold start");
        assert_eq!(report.loaded, 0);
        assert!(report.cleaned_tmp);
        assert!(!tmp.exists(), "stale tmp must be removed");

        // Corrupt file: quarantined aside (preserved for inspection), serving
        // starts cold instead of aborting.
        std::fs::write(&path, "{\"version\":1,\"entries\":[tru").unwrap();
        let report = cache.load_or_quarantine(&path).expect("quarantine");
        assert_eq!(report.loaded, 0);
        assert_eq!(report.quarantined.as_deref(), Some(quarantine.as_path()));
        assert!(!path.exists() && quarantine.exists());
        assert_eq!(cache.quarantined(), 1);

        // The rebuilt cache then persists and reloads normally.
        let cfg = AccelConfig::paper_default();
        cache.explore(&wl(), &cfg, &quick_opts());
        cache.save(&path).expect("save rebuilt");
        let report = cache.load_or_quarantine(&path).expect("reload");
        assert_eq!(report.loaded, 1);
        assert!(report.quarantined.is_none());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&quarantine);
    }

    #[test]
    fn crash_between_tmp_write_and_rename_preserves_the_previous_file() {
        let cfg = AccelConfig::paper_default();
        let dir = std::env::temp_dir();
        let path = dir.join(format!("omega-dse-cache-crash-{}.json", std::process::id()));
        let tmp = path.with_extension("tmp");
        let cache = DseCache::new();
        cache.explore(&wl(), &cfg, &quick_opts());
        cache.save(&path).expect("first save");
        let before = std::fs::read(&path).unwrap();

        // Grow the cache, then crash the save in the kill-during-save window.
        let bigger = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 32);
        cache.explore(&bigger, &cfg, &quick_opts());
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            cache.save_with_crash_point(&path, true)
        }));
        assert!(crashed.is_err(), "the injected crash must unwind");
        assert!(tmp.exists(), "the crash leaves a tmp file behind");
        assert_eq!(std::fs::read(&path).unwrap(), before, "the target file is untouched");

        // Recovery: the previous snapshot loads, the leftover tmp is cleaned.
        let recovered = DseCache::new();
        let report = recovered.load_or_quarantine(&path).expect("recover");
        assert_eq!(report.loaded, 1, "the pre-crash snapshot survives");
        assert!(report.cleaned_tmp && !tmp.exists());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn warm_hint_returns_nearest_cached_shape() {
        let cfg = AccelConfig::paper_default();
        let cache = DseCache::new();
        let dataset = DatasetSpec::mutag().generate(4);
        let opts = quick_opts();
        assert!(cache.warm_hint(&GnnWorkload::gcn_layer(&dataset, 16)).is_none());
        cache.explore(&GnnWorkload::gcn_layer(&dataset, 8), &cfg, &opts);
        cache.explore(&GnnWorkload::gcn_layer(&dataset, 64), &cfg, &opts);
        // g=16 is closer to g=8 than to g=64 in log space.
        let hint = cache.warm_hint(&GnnWorkload::gcn_layer(&dataset, 16)).unwrap();
        assert_eq!(hint.profile.g, 8);
        assert!(hint.distance > 0.0 && hint.distance < 1.0, "{}", hint.distance);
        // An attention workload is structurally different from every cached
        // entry: a hint still comes back, but carrying the mismatch penalty.
        let gat = GnnWorkload::gat_layer(&dataset, 16, 4);
        let hint = cache.warm_hint(&gat).unwrap();
        assert!(hint.distance > 100.0, "{}", hint.distance);
    }

    #[test]
    fn pareto_frontier_is_sound_and_thread_invariant() {
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let opts = DseOptions { pareto: true, ..quick_opts() };
        let out = explore(&workload, &cfg, &opts);
        // Accounting still closes with frontier-based pruning in the loop.
        assert_eq!(out.evaluated - out.seeded + out.skipped + out.pruned, 6656);
        assert!(out.frontier.len() >= 3, "frontier too small: {}", out.frontier.len());
        // Mutually non-dominated, sorted by runtime.
        for (i, a) in out.frontier.iter().enumerate() {
            for (j, b) in out.frontier.iter().enumerate() {
                if i != j {
                    let av = [a.runtime_cycles as f64, a.energy_pj, a.buffer_peak_bytes as f64];
                    let bv = [b.runtime_cycles as f64, b.energy_pj, b.buffer_peak_bytes as f64];
                    assert!(!dominates(&av, &bv), "{} dominates {}", a.dataflow, b.dataflow);
                }
            }
        }
        for w in out.frontier.windows(2) {
            assert!(w[0].runtime_cycles <= w[1].runtime_cycles);
        }
        // The frontier head is the exact runtime optimum of the plain search,
        // and the ranked list mirrors the frontier in pareto mode.
        let plain = explore(&workload, &cfg, &quick_opts());
        assert_eq!(out.frontier[0].runtime_cycles, plain.best().unwrap().report.total_cycles);
        assert_eq!(out.ranked.len(), out.frontier.len().min(opts.top_k));
        // Thread count and chunking do not change the frontier bit for bit.
        let b = explore(
            &workload,
            &cfg,
            &DseOptions { threads: 4, chunk: 17, pareto: true, ..quick_opts() },
        );
        let key = |o: &ExploreOutcome| -> Vec<(String, u64, u64, u64, Option<usize>)> {
            o.frontier
                .iter()
                .map(|p| {
                    (
                        p.dataflow.to_string(),
                        p.runtime_cycles,
                        p.energy_pj.to_bits(),
                        p.buffer_peak_bytes,
                        p.pattern_index,
                    )
                })
                .collect()
        };
        assert_eq!(key(&out), key(&b));
        // Pruning changes coverage, not the frontier.
        let noprune =
            explore(&workload, &cfg, &DseOptions { prune: false, pareto: true, ..quick_opts() });
        assert_eq!(key(&out), key(&noprune));
        assert_eq!(noprune.pruned, 0);
    }

    #[test]
    fn frontier_is_empty_without_pareto() {
        let out = explore(&wl(), &AccelConfig::paper_default(), &quick_opts());
        assert!(out.frontier.is_empty());
    }

    #[test]
    fn budget_query_from_frontier_matches_filtered_sweep() {
        // For any footprint budget, the min-runtime feasible candidate must be
        // on the frontier with its exact optimum runtime — the property the
        // CLI's `--max-buffer-bytes` answer relies on.
        let cfg = AccelConfig::paper_default();
        let workload = wl();
        let out =
            explore(&workload, &cfg, &DseOptions { pareto: true, prune: false, ..quick_opts() });
        let space = PatternSpace::new();
        let mut brute: Vec<(u64, u64)> = Vec::new(); // (buffer_peak, cycles)
        for i in 0..space.len() {
            let df = concretize_pattern(&space.get(i), &workload, &cfg);
            if let Ok(r) = evaluate(&workload, &df, &cfg) {
                brute.push((r.buffer_peak_bytes, r.total_cycles));
            }
        }
        let budgets: Vec<u64> =
            out.frontier.iter().map(|p| p.buffer_peak_bytes).collect();
        for budget in budgets {
            let best_brute =
                brute.iter().filter(|(b, _)| *b <= budget).map(|(_, c)| *c).min().unwrap();
            let best_front = out
                .frontier
                .iter()
                .filter(|p| p.buffer_peak_bytes <= budget)
                .map(|p| p.runtime_cycles)
                .min()
                .unwrap();
            assert!(best_front <= best_brute, "budget {budget}");
        }
    }

    #[test]
    fn pareto_front_accumulator_is_order_invariant() {
        let offers: Vec<(usize, [f64; 3])> = vec![
            (0, [3.0, 1.0, 2.0]),
            (1, [1.0, 3.0, 2.0]),
            (2, [2.0, 2.0, 2.0]),
            (3, [3.0, 3.0, 3.0]), // dominated by 2
            (4, [1.0, 3.0, 2.0]), // duplicate axes of 1 — both kept, dedup later
        ];
        let run = |order: &[usize]| -> Vec<(usize, [f64; 3])> {
            let mut f: ParetoFront<usize, ()> = ParetoFront::new();
            for &i in order {
                let (index, axes) = offers[i];
                f.offer(index, index, (), axes);
            }
            f.into_sorted().into_iter().map(|(i, _, _, a)| (i, a)).collect()
        };
        let fwd = run(&[0, 1, 2, 3, 4]);
        let rev = run(&[4, 3, 2, 1, 0]);
        assert_eq!(fwd, rev);
        assert_eq!(fwd.iter().map(|(i, _)| *i).collect::<Vec<_>>(), vec![1, 4, 2, 0]);
        // Strict-dominance pruning test: a bound vector strictly above an
        // entry on all axes is prunable; touching any axis exactly is not.
        let mut f: ParetoFront<usize, ()> = ParetoFront::new();
        f.offer(0, 0, (), [1.0, 1.0, 1.0]);
        assert!(f.strictly_dominates(&[2.0, 2.0, 2.0]));
        assert!(!f.strictly_dominates(&[1.0, 2.0, 2.0]));
    }

    #[test]
    fn top_k_keeps_best_with_deterministic_ties() {
        let mut top: TopK<usize, ()> = TopK::new(2);
        for index in [5usize, 3, 9, 1] {
            // Distinct candidates, identical scores: ties break by index.
            top.offer(Entry { score: 1.0, index, candidate: index, report: () });
        }
        let idx: Vec<usize> = top.entries.iter().map(|e| e.index).collect();
        assert_eq!(idx, vec![1, 3]);
    }

    #[test]
    fn top_k_capacity_counts_distinct_candidates() {
        // The same candidate offered repeatedly occupies one slot (best key
        // wins), so `worst_at_capacity` really means "k distinct candidates
        // retained" — the soundness condition of the shared prune threshold.
        let mut top: TopK<&str, ()> = TopK::new(2);
        for (score, index) in [(1.0, 5usize), (1.0, 3), (1.0, 9), (1.0, 1)] {
            top.offer(Entry { score, index, candidate: "same", report: () });
        }
        assert_eq!(top.entries.len(), 1);
        assert_eq!(top.entries[0].index, 1);
        assert_eq!(top.worst_at_capacity(), None); // 1 distinct < k = 2
        top.offer(Entry { score: 4.0, index: 7, candidate: "other", report: () });
        assert_eq!(top.worst_at_capacity(), Some(4.0));
        // A third distinct candidate must now beat the worst to enter.
        top.offer(Entry { score: 5.0, index: 2, candidate: "worse", report: () });
        assert_eq!(top.entries.len(), 2);
        assert_eq!(top.worst_at_capacity(), Some(4.0));
        top.offer(Entry { score: 2.0, index: 8, candidate: "better", report: () });
        assert_eq!(top.worst_at_capacity(), Some(2.0));
    }
}
