//! The cost report: what OMEGA tells you about one dataflow on one workload.

use serde::{Deserialize, Serialize};

use omega_accel::{AccessCounters, EnergyModel, OperandClass, PhaseStats, NUM_OPERAND_CLASSES};
use omega_dataflow::{GnnDataflow, Granularity};

/// Where the intermediate matrix lives, deciding its per-access energy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntermediateCost {
    /// Staged through the global buffer at full GB rate, with the given
    /// fraction of accesses overflowing to DRAM (Seq on large intermediates,
    /// Fig. 6).
    GlobalBuffer {
        /// Fraction of intermediate accesses served from DRAM, in `[0, 1]`.
        dram_fraction: f64,
    },
    /// A dedicated on-chip partition of the given capacity (PP's ping-pong
    /// buffer): cheaper per access.
    Partition(usize),
}

/// On-chip buffer access energy, broken down the way Fig. 12 plots it.
#[derive(Debug, Clone, Copy, Deserialize, Serialize)]
pub struct EnergyBreakdown {
    /// Global-buffer access energy (pJ), excluding intermediate-partition traffic.
    pub gb_pj: f64,
    /// Register-file access energy (pJ).
    pub rf_pj: f64,
    /// Intermediate-buffer energy (pJ): the dedicated ping-pong partition for PP
    /// (smaller partition → cheaper access, Section V-B2); for Seq/SP-Generic the
    /// intermediate lives in the GB and is charged at GB cost here.
    pub intermediate_pj: f64,
    /// Off-chip DRAM energy (pJ) for the intermediate overflow when it does not
    /// fit on chip (Seq on HF datasets, Fig. 6).
    pub dram_pj: f64,
    /// GB energy per operand class (Fig. 13's Adj/Inp/Int/Wt/Op/Psum plus the
    /// attention-score bucket), pJ.
    pub gb_by_class_pj: [f64; NUM_OPERAND_CLASSES],
}

impl EnergyBreakdown {
    /// Computes the breakdown from merged counters.
    ///
    /// `intermediate_partition_bytes` is `Some(capacity)` when the intermediate
    /// traffic goes through a dedicated partition (PP) instead of the GB.
    pub fn from_counters(
        counters: &AccessCounters,
        energy: &EnergyModel,
        intermediate_partition_bytes: Option<usize>,
    ) -> Self {
        let cost = match intermediate_partition_bytes {
            Some(cap) => IntermediateCost::Partition(cap),
            None => IntermediateCost::GlobalBuffer { dram_fraction: 0.0 },
        };
        Self::from_counters_with(counters, energy, cost)
    }

    /// [`EnergyBreakdown::from_counters`] with an explicit intermediate-cost
    /// policy (including DRAM overflow for Seq, Fig. 6).
    pub fn from_counters_with(
        counters: &AccessCounters,
        energy: &EnergyModel,
        intermediate: IntermediateCost,
    ) -> Self {
        let int_idx = OperandClass::Intermediate.idx();
        let int_accesses = counters.gb_reads[int_idx] + counters.gb_writes[int_idx];
        let (int_rate, dram_fraction) = match intermediate {
            IntermediateCost::Partition(cap) => (energy.buffer_access_pj(cap), 0.0),
            IntermediateCost::GlobalBuffer { dram_fraction } => {
                (energy.gb_access_pj, dram_fraction.clamp(0.0, 1.0))
            }
        };
        let dram_pj = int_accesses as f64 * dram_fraction * energy.dram_access_pj;
        let mut gb_by_class_pj = [0.0; NUM_OPERAND_CLASSES];
        let mut gb_pj = 0.0;
        for c in OperandClass::ALL {
            let accesses = counters.gb_reads[c.idx()] + counters.gb_writes[c.idx()];
            let rate = if c == OperandClass::Intermediate { int_rate } else { energy.gb_access_pj };
            gb_by_class_pj[c.idx()] = accesses as f64 * rate;
            if c != OperandClass::Intermediate {
                gb_pj += gb_by_class_pj[c.idx()];
            }
        }
        EnergyBreakdown {
            gb_pj,
            rf_pj: energy.rf_pj(counters.rf_reads + counters.rf_writes),
            intermediate_pj: int_accesses as f64 * int_rate,
            dram_pj,
            gb_by_class_pj,
        }
    }

    /// Total buffer energy in pJ (on-chip plus DRAM overflow).
    pub fn total_pj(&self) -> f64 {
        self.gb_pj + self.rf_pj + self.intermediate_pj + self.dram_pj
    }

    /// Total on-chip buffer energy in µJ.
    pub fn total_uj(&self) -> f64 {
        self.total_pj() / 1e6
    }
}

/// Full evaluation result for one dataflow on one workload.
#[derive(Debug, Clone, Deserialize, Serialize)]
pub struct CostReport {
    /// The evaluated dataflow.
    pub dataflow: GnnDataflow,
    /// End-to-end runtime in cycles (inter-phase composition applied; includes
    /// the SDDMM scoring phase for attention workloads).
    pub total_cycles: u64,
    /// Aggregation phase statistics.
    pub agg: PhaseStats,
    /// Combination phase statistics.
    pub cmb: PhaseStats,
    /// SDDMM scoring-phase statistics (attention workloads only) — runs
    /// sequentially before the aggregation/combination pair, sharing the
    /// Aggregation tiling.
    pub sddmm: Option<PhaseStats>,
    /// Elementwise post-phase statistics (activation / LayerNorm, when the
    /// workload requests one) — runs sequentially after both matrix phases on
    /// the final phase's tiling.
    pub post: Option<PhaseStats>,
    /// Merged access counters of all phases.
    pub counters: AccessCounters,
    /// Intermediate buffering requirement in elements (Table III column 2:
    /// `V×F` for Seq, `Pel` for SP-Generic, 0 for SP-Optimized, `2×Pel` for PP).
    pub intermediate_buffer_elems: u64,
    /// Peak on-chip working set in bytes: each phase's global-buffer peak plus
    /// its aggregate register-file peak (`rf_peak_bytes × pe_footprint`),
    /// composed across phases the way the runtime is — sequential phases take
    /// the maximum, overlapped (pipelined / partitioned) phases add — plus the
    /// intermediate buffering of Table III. This is *demand*, not allocation:
    /// it can exceed the configured capacities, which is exactly what the
    /// capacity-aware search constrains.
    pub buffer_peak_bytes: u64,
    /// Pipelined elements per chunk (`Pel`), when the dataflow pipelines.
    pub pel: Option<u64>,
    /// Pipelining granularity, when the dataflow pipelines.
    pub granularity: Option<Granularity>,
    /// `true` when the SP-Optimized conditions held (Table II row 2).
    pub sp_optimized: bool,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
}

impl CostReport {
    /// Runtime normalised to another report (the paper normalises everything to
    /// `Seq1`).
    pub fn runtime_relative_to(&self, baseline: &CostReport) -> f64 {
        if baseline.total_cycles == 0 {
            return f64::INFINITY;
        }
        self.total_cycles as f64 / baseline.total_cycles as f64
    }

    /// Energy-delay product (pJ · cycles), a common mapper objective.
    pub fn edp(&self) -> f64 {
        self.energy.total_pj() * self.total_cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters() -> AccessCounters {
        let mut c = AccessCounters::default();
        c.read(OperandClass::Input, 1000);
        c.read(OperandClass::Intermediate, 500);
        c.write(OperandClass::Intermediate, 500);
        c.write(OperandClass::Output, 100);
        c.rf_reads = 10_000;
        c.rf_writes = 5_000;
        c
    }

    #[test]
    fn gb_energy_excludes_intermediate_bucket() {
        let e = EnergyModel::paper_default();
        let b = EnergyBreakdown::from_counters(&counters(), &e, None);
        // GB bucket: 1000 input reads + 100 output writes at 1.046 pJ.
        assert!((b.gb_pj - 1100.0 * 1.046).abs() < 1e-6);
        // Intermediate at full GB rate without a partition.
        assert!((b.intermediate_pj - 1000.0 * 1.046).abs() < 1e-6);
        assert!((b.rf_pj - 15_000.0 * 0.053).abs() < 1e-6);
        assert_eq!(b.dram_pj, 0.0);
        assert!((b.total_pj() - (b.gb_pj + b.rf_pj + b.intermediate_pj)).abs() < 1e-9);
    }

    #[test]
    fn partition_discounts_intermediate_energy() {
        let e = EnergyModel::paper_default();
        let full = EnergyBreakdown::from_counters(&counters(), &e, None);
        let small = EnergyBreakdown::from_counters(&counters(), &e, Some(16 << 10));
        assert!(small.intermediate_pj < full.intermediate_pj);
        // Non-intermediate buckets unchanged.
        assert!((small.gb_pj - full.gb_pj).abs() < 1e-9);
        // Class breakdown reflects the discount.
        let idx = OperandClass::Intermediate.idx();
        assert!(small.gb_by_class_pj[idx] < full.gb_by_class_pj[idx]);
    }

    #[test]
    fn dram_overflow_is_charged() {
        let e = EnergyModel::paper_default();
        let on_chip = EnergyBreakdown::from_counters_with(
            &counters(),
            &e,
            IntermediateCost::GlobalBuffer { dram_fraction: 0.0 },
        );
        let overflow = EnergyBreakdown::from_counters_with(
            &counters(),
            &e,
            IntermediateCost::GlobalBuffer { dram_fraction: 0.5 },
        );
        // 1000 intermediate accesses, half from DRAM at 200 pJ.
        assert!((overflow.dram_pj - 500.0 * 200.0).abs() < 1e-6);
        assert!(overflow.total_pj() > on_chip.total_pj());
        // Fractions are clamped.
        let clamped = EnergyBreakdown::from_counters_with(
            &counters(),
            &e,
            IntermediateCost::GlobalBuffer { dram_fraction: 7.0 },
        );
        assert!((clamped.dram_pj - 1000.0 * 200.0).abs() < 1e-6);
    }

    #[test]
    fn class_breakdown_sums_to_buckets() {
        let e = EnergyModel::paper_default();
        let b = EnergyBreakdown::from_counters(&counters(), &e, Some(1 << 12));
        let sum: f64 = b.gb_by_class_pj.iter().sum();
        assert!((sum - (b.gb_pj + b.intermediate_pj)).abs() < 1e-6);
    }
}
