//! Multi-layer GNN models: evaluating whole networks, not just one layer.
//!
//! Section II-A: "the main computation bottlenecks of various GNN algorithms like
//! GCN, GraphSage, GINConv can be broken down into two phases: Aggregation and
//! Combination. GCNs allow either phase to precede the other while some
//! algorithms like GraphSAGE perform Aggregation before Combination." This module
//! models those algorithms as layer stacks over one graph:
//!
//! * layer `ℓ` consumes the width produced by layer `ℓ−1` (the first layer
//!   consumes the dataset features), so the F↔G asymmetry — and with it the best
//!   dataflow — changes from layer to layer;
//! * the algorithm constrains the legal phase orders (GraphSAGE/GIN are AC-only);
//! * GIN's combination is a 2-layer MLP, adding a third (dense) phase per layer,
//!   which the evaluator costs as an extra GEMM stage.
//!
//! [`evaluate_model`] runs one preset across all layers (re-concretised per
//! layer); [`evaluate_model_mapped`] lets the mapper pick the best preset *per
//! layer* — the cross-layer face of the paper's flexibility argument.

use serde::Serialize;

use omega_accel::engine::{simulate_gemm, ElementwiseOp, EngineOptions, GemmDims, OperandClasses};
use omega_accel::{AccelConfig, AccessCounters, EnergyModel};
use omega_dataflow::presets::Preset;
use omega_dataflow::tiles::choose_tiling;
use omega_dataflow::{GnnDataflow, InterPhase, PhaseOrder};

use crate::cost::EnergyBreakdown;
use crate::mapper::{best_of, preset_candidates, Objective};
use crate::multiphase::{Chain, ChainError, ChainNode, Link, PartitionSplit, Stage};
use crate::{evaluate, CostReport, EvalError, GnnWorkload};

/// The GNN algorithm, deciding phase-order legality and per-layer structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Algorithm {
    /// Graph Convolutional Network: either phase order is legal.
    Gcn,
    /// GraphSAGE (mean aggregator): Aggregation must precede Combination.
    GraphSage,
    /// GIN: Aggregation first, then a 2-layer MLP combination with the given
    /// hidden width.
    GinConv {
        /// Hidden width of the per-layer MLP.
        mlp_hidden: usize,
    },
    /// Graph Attention Network: every layer prepends an SDDMM scoring phase
    /// (per-edge `QKᵀ` dot products masked to the adjacency, plus an
    /// edge-wise softmax) before the attention-weighted Aggregation — three
    /// phases per layer, AC-only.
    Gat {
        /// Attention heads per layer (the feature width splits across them).
        heads: usize,
    },
}

impl Algorithm {
    /// Phase orders this algorithm admits (Section II-A; GAT scores on the
    /// input features, so Aggregation must follow the scoring).
    pub fn allowed_phase_orders(self) -> &'static [PhaseOrder] {
        match self {
            Algorithm::Gcn => &[PhaseOrder::AC, PhaseOrder::CA],
            Algorithm::GraphSage | Algorithm::GinConv { .. } | Algorithm::Gat { .. } => {
                &[PhaseOrder::AC]
            }
        }
    }

    /// The attention structure this algorithm gives every layer workload
    /// (`None` for the two-phase algorithms).
    pub fn attention(self) -> Option<crate::workload::AttentionSpec> {
        match self {
            Algorithm::Gat { heads } => Some(crate::workload::AttentionSpec::new(heads)),
            _ => None,
        }
    }
}

/// A GNN model: an algorithm plus the output width of each layer.
#[derive(Debug, Clone, Serialize)]
pub struct GnnModel {
    /// Model name (for reports).
    pub name: String,
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Output feature width per layer (layer 0 consumes the dataset features).
    pub layer_widths: Vec<usize>,
    /// Elementwise post-phase (activation / LayerNorm) every layer applies to
    /// its output. `None` (the constructors' default) evaluates the classic
    /// matrix-phases-only model.
    pub activation: Option<ElementwiseOp>,
}

impl GnnModel {
    /// The standard 2-layer GCN (hidden 16, `num_classes` outputs) used by the
    /// Kipf & Welling citation benchmarks.
    pub fn gcn_2layer(num_classes: usize) -> Self {
        GnnModel {
            name: "GCN-2".into(),
            algorithm: Algorithm::Gcn,
            layer_widths: vec![16, num_classes],
            activation: None,
        }
    }

    /// A 2-layer GraphSAGE with the given hidden and output widths.
    pub fn sage_2layer(hidden: usize, num_classes: usize) -> Self {
        GnnModel {
            name: "GraphSAGE-2".into(),
            algorithm: Algorithm::GraphSage,
            layer_widths: vec![hidden, num_classes],
            activation: None,
        }
    }

    /// A GIN with `layers` identical layers of the given width (GIN papers use
    /// 5 layers of width 64 on the TU datasets).
    pub fn gin(layers: usize, width: usize) -> Self {
        GnnModel {
            name: format!("GIN-{layers}"),
            algorithm: Algorithm::GinConv { mlp_hidden: width },
            layer_widths: vec![width; layers],
            activation: None,
        }
    }

    /// The standard 2-layer GAT (Veličković et al. on the citation networks:
    /// `heads` heads over a hidden width of 64, one implicit output head of
    /// `num_classes`).
    pub fn gat_2layer(heads: usize, num_classes: usize) -> Self {
        GnnModel {
            name: "GAT-2".into(),
            algorithm: Algorithm::Gat { heads },
            layer_widths: vec![64, num_classes],
            activation: None,
        }
    }

    /// Same model with every layer followed by the given elementwise
    /// post-phase (ReLU-style activation or LayerNorm).
    pub fn with_activation(mut self, op: ElementwiseOp) -> Self {
        self.activation = Some(op);
        self
    }

    /// The per-layer workloads for a base (dataset) workload. GAT layers carry
    /// the algorithm's attention spec, which makes [`crate::evaluate`] prepend
    /// the SDDMM scoring phase.
    pub fn layer_workloads(&self, base: &GnnWorkload) -> Vec<GnnWorkload> {
        let mut f = base.f;
        let attention = self.algorithm.attention();
        self.layer_widths
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let wl = GnnWorkload {
                    name: format!("{}[L{}]", base.name, i),
                    f,
                    g,
                    attention,
                    post_op: self.activation,
                    ..base.clone()
                };
                f = g;
                wl
            })
            .collect()
    }
}

/// Evaluation of one model on one graph.
#[derive(Debug, Clone, Serialize)]
pub struct ModelReport {
    /// Per-layer reports, in layer order.
    pub layers: Vec<CostReport>,
    /// Extra MLP-GEMM cycles per layer (GIN only; zero otherwise).
    pub mlp_cycles: Vec<u64>,
    /// End-to-end cycles (layers are sequential: layer ℓ+1 needs all of ℓ).
    pub total_cycles: u64,
    /// Total buffer energy in pJ.
    pub total_energy_pj: f64,
}

/// Model-evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The chosen dataflow's phase order is illegal for the algorithm.
    PhaseOrderNotAllowed {
        /// The offending order.
        order: PhaseOrder,
    },
    /// A layer evaluation failed.
    Layer(EvalError),
    /// `to_chain` was given the wrong number of per-layer dataflows.
    LayerCountMismatch {
        /// Layers in the model.
        expected: usize,
        /// Dataflows supplied.
        got: usize,
    },
    /// `to_chain` was given the wrong number of inter-layer links.
    LinkCountMismatch {
        /// Links expected (`layers - 1`).
        expected: usize,
        /// Links supplied.
        got: usize,
    },
    /// The lowered chain is structurally invalid (e.g. a stage pipelined on
    /// both sides, or a partition too small for its stage's tiling).
    Chain(ChainError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::PhaseOrderNotAllowed { order } => {
                write!(f, "phase order {order} is not legal for this algorithm (Section II-A)")
            }
            ModelError::Layer(e) => write!(f, "layer evaluation failed: {e}"),
            ModelError::LayerCountMismatch { expected, got } => {
                write!(f, "model has {expected} layers but {got} dataflows were supplied")
            }
            ModelError::LinkCountMismatch { expected, got } => {
                write!(f, "model needs {expected} inter-layer links but {got} were supplied")
            }
            ModelError::Chain(e) => write!(f, "chain evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<ChainError> for ModelError {
    fn from(e: ChainError) -> Self {
        ModelError::Chain(e)
    }
}

/// Evaluates `model` on `base` using one Table V preset for every layer
/// (re-concretised per layer, since each layer's F/G differ).
pub fn evaluate_model(
    model: &GnnModel,
    base: &GnnWorkload,
    preset: &Preset,
    cfg: &AccelConfig,
) -> Result<ModelReport, ModelError> {
    let dfs = uniform_layer_dataflows(model, base, preset, cfg)?;
    let mut layers = Vec::new();
    let mut mlp_cycles = Vec::new();
    for (wl, df) in model.layer_workloads(base).iter().zip(&dfs) {
        let report = evaluate(wl, df, cfg).map_err(ModelError::Layer)?;
        mlp_cycles.push(mlp_stage(model, wl, &report, cfg));
        layers.push(report);
    }
    Ok(finish(layers, mlp_cycles))
}

/// Evaluates `model` with the mapper choosing the best preset per layer.
pub fn evaluate_model_mapped(
    model: &GnnModel,
    base: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
) -> Result<ModelReport, ModelError> {
    let mut layers = Vec::new();
    let mut mlp_cycles = Vec::new();
    for wl in model.layer_workloads(base) {
        let candidates: Vec<_> = preset_candidates(&wl, cfg)
            .into_iter()
            .filter(|df| model.allowed(df.phase_order))
            .collect();
        let best = best_of(&candidates, &wl, cfg, objective, 4)
            .ok_or(ModelError::Layer(EvalError::Invalid(
                omega_dataflow::ValidationError::BrokenSpOptimizedTiles { detail: "no candidates" },
            )))?;
        mlp_cycles.push(mlp_stage(model, &wl, &best.report, cfg));
        layers.push(best.report);
    }
    Ok(finish(layers, mlp_cycles))
}

impl GnnModel {
    fn allowed(&self, order: PhaseOrder) -> bool {
        self.algorithm.allowed_phase_orders().contains(&order)
    }
}

/// GIN's second MLP GEMM (`V×G · G×mlp_hidden`), costed with the layer's
/// combination tiling on the full array. Returns `(cycles, energy_pj)`.
fn mlp_stage(model: &GnnModel, wl: &GnnWorkload, report: &CostReport, cfg: &AccelConfig) -> (u64, f64) {
    let Algorithm::GinConv { mlp_hidden } = model.algorithm else {
        return (0, 0.0);
    };
    let dims = GemmDims { v: wl.v, f: wl.g, g: mlp_hidden };
    let stats = simulate_gemm(
        dims,
        &report.dataflow.cmb,
        cfg,
        &OperandClasses::combination_ac(),
        &EngineOptions::plain(cfg.full_bandwidth()),
    );
    let energy = EnergyBreakdown::from_counters(&stats.counters, &EnergyModel::paper_default(), None);
    (stats.cycles, energy.total_pj())
}

/// Concretises `preset` for every layer of `model` (PP split 50-50) — the
/// per-layer dataflows a *uniform* fixed-preset accelerator would run, shared
/// by [`evaluate_model`] and the uniform baseline of the model-level explorer.
pub fn uniform_layer_dataflows(
    model: &GnnModel,
    base: &GnnWorkload,
    preset: &Preset,
    cfg: &AccelConfig,
) -> Result<Vec<GnnDataflow>, ModelError> {
    if !model.allowed(preset.pattern.phase_order) {
        return Err(ModelError::PhaseOrderNotAllowed { order: preset.pattern.phase_order });
    }
    Ok(model
        .layer_workloads(base)
        .iter()
        .map(|wl| {
            let ctx = wl.tile_context(preset.pattern.phase_order);
            let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
                (cfg.num_pes / 2, cfg.num_pes / 2)
            } else {
                (cfg.num_pes, cfg.num_pes)
            };
            preset.concretize(&ctx, a, c)
        })
        .collect())
}

impl GnnModel {
    /// Output elements layer `layer` hands to its successor (the layer's final
    /// stage output: `V×G`, or `V×mlp_hidden` for GIN's trailing MLP), together
    /// with the width of one output row. Drives the inter-layer `Pel` ladder.
    pub fn layer_output_shape(&self, base: &GnnWorkload, layer: usize) -> (u64, u64) {
        let width = match self.algorithm {
            Algorithm::GinConv { mlp_hidden } => mlp_hidden,
            _ => self.layer_widths[layer],
        };
        (base.v as u64 * width as u64, width as u64)
    }
}

/// Re-tiles a stage that no longer fits its PE allocation (a partitioned
/// inter-layer link squeezed it): same pattern, balanced growth under the
/// reduced budget. Stages that already fit keep their original tiling.
fn fit_stage(stage: &mut Stage, ctx: &omega_dataflow::tiles::TileContext, budget: usize) {
    if stage.pe_footprint() <= budget {
        return;
    }
    let pattern = stage.tiling().to_pattern();
    let fitted = choose_tiling(&pattern, ctx, budget, &crate::dse::balanced_policy(&pattern));
    match &mut stage.kind {
        crate::multiphase::StageKind::Gemm { tiling, .. }
        | crate::multiphase::StageKind::Spmm { tiling, .. }
        | crate::multiphase::StageKind::Sddmm { tiling, .. }
        | crate::multiphase::StageKind::Elementwise { tiling, .. } => *tiling = fitted,
    }
}

/// Lowers a whole GNN model onto a multiphase [`Chain`]: one SpMM + one GEMM
/// stage per layer in the layer dataflow's phase order (plus GIN's MLP GEMM),
/// intra-layer links derived from each dataflow's inter-phase strategy
/// (`Seq`/`SP` → [`Link::Sequential`] with SP-Optimized residency flags, `PP` →
/// a partitioned [`Link::Pipelined`] at the paper's `Pel`), and the given
/// inter-layer links woven between layer boundaries.
///
/// A partitioned inter-layer link re-tiles the boundary stages to fit their PE
/// allocations (same pattern, balanced growth). The lowering is cycle-faithful
/// to [`evaluate`]: a chain with all-`Sequential` inter-layer links reproduces
/// [`evaluate_model`]'s end-to-end cycle count exactly (chain energy is coarser
/// — all non-RF traffic at GB rate, no partition discount).
pub fn to_chain(
    model: &GnnModel,
    base: &GnnWorkload,
    layer_dataflows: &[GnnDataflow],
    inter_links: &[Link],
    cfg: &AccelConfig,
) -> Result<Chain, ModelError> {
    let wls = model.layer_workloads(base);
    if layer_dataflows.len() != wls.len() {
        return Err(ModelError::LayerCountMismatch { expected: wls.len(), got: layer_dataflows.len() });
    }
    if inter_links.len() + 1 != wls.len() {
        return Err(ModelError::LinkCountMismatch {
            expected: wls.len().saturating_sub(1),
            got: inter_links.len(),
        });
    }

    // Build each layer's stage list first (validation + phase order gates).
    let mut layer_stages: Vec<Vec<Stage>> = Vec::with_capacity(wls.len());
    for (wl, df) in wls.iter().zip(layer_dataflows) {
        if !model.allowed(df.phase_order) {
            return Err(ModelError::PhaseOrderNotAllowed { order: df.phase_order });
        }
        omega_dataflow::validate(df).map_err(|e| ModelError::Layer(EvalError::Invalid(e)))?;
        let sp_opt = df.is_sp_optimized();
        let gemm_dims = GemmDims { v: wl.v, f: wl.f, g: wl.g };
        let agg_width = match df.phase_order {
            PhaseOrder::AC => wl.f,
            PhaseOrder::CA => wl.g,
        };
        let agg = Stage::spmm(format!("{}.agg", wl.name), wl.degrees.clone(), agg_width, df.agg);
        let cmb = Stage::gemm(format!("{}.cmb", wl.name), gemm_dims, df.cmb);
        let (first, second) = match df.phase_order {
            PhaseOrder::AC => (agg, cmb),
            PhaseOrder::CA => (cmb, agg),
        };
        let (first, second) = if sp_opt {
            (first.with_residency(false, true), second.with_residency(true, false))
        } else {
            (first, second)
        };
        let mut stages = vec![first, second];
        if let Some(op) = model.activation {
            // The elementwise post-phase streams the layer's V×G output on the
            // final matrix phase's tiling, exactly as `evaluate` plans it — a
            // sequential suffix to the phase pair.
            let post_tiling = match df.phase_order {
                PhaseOrder::AC => df.cmb,
                PhaseOrder::CA => df.agg,
            };
            stages.push(Stage::elementwise(
                format!("{}.post", wl.name),
                wl.v,
                wl.g,
                op,
                post_tiling,
            ));
        }
        if let Algorithm::GinConv { mlp_hidden } = model.algorithm {
            let dims = GemmDims { v: wl.v, f: wl.g, g: mlp_hidden };
            stages.push(Stage::gemm(format!("{}.mlp", wl.name), dims, df.cmb));
        }
        if let Some(att) = model.algorithm.attention() {
            // GAT: the SDDMM scoring stage precedes the (AC-ordered)
            // aggregation. Its tiling is the layer's Aggregation tiling, which
            // must satisfy the SDDMM loop-order rule; when the layer is
            // SP-Optimized the scores stay in the RFs and the aggregation
            // gathers them in place (the reused-score residency pair).
            omega_dataflow::validate_sddmm(&df.agg)
                .map_err(|e| ModelError::Layer(EvalError::Invalid(e)))?;
            let mut sddmm = Stage::sddmm(
                format!("{}.att", wl.name),
                wl.degrees.clone(),
                att.dot_width(wl.f),
                att.heads,
                df.agg,
            );
            if sp_opt {
                sddmm = sddmm.with_residency(false, true);
            }
            stages[0] = stages[0].clone().with_scores(sp_opt);
            stages.insert(0, sddmm);
        }
        layer_stages.push(stages);
    }

    // Every stage must at least fit the target machine (candidates may have
    // been concretised for a larger array).
    for (stages, (wl, df)) in layer_stages.iter_mut().zip(wls.iter().zip(layer_dataflows)) {
        let ctx = wl.tile_context(df.phase_order);
        for stage in stages.iter_mut() {
            fit_stage(stage, &ctx, cfg.num_pes);
        }
    }

    // Partitioned inter-layer links squeeze the boundary stages: re-tile them
    // under their allocations before deriving intra-layer links, so PP splits
    // reflect the tilings that actually run.
    for (j, link) in inter_links.iter().enumerate() {
        if let Link::Pipelined { split: Some(s), .. } = link {
            let producer_ctx = wls[j].tile_context(layer_dataflows[j].phase_order);
            let producer = layer_stages[j].last_mut().expect("layers have stages");
            fit_stage(producer, &producer_ctx, s.producer_pes);
            let consumer_ctx = wls[j + 1].tile_context(layer_dataflows[j + 1].phase_order);
            let consumer = layer_stages[j + 1].first_mut().expect("layers have stages");
            fit_stage(consumer, &consumer_ctx, s.consumer_pes);
        }
    }

    // Weave intra- and inter-layer links.
    let mut nodes: Vec<ChainNode> = Vec::new();
    let mut links: Vec<Link> = Vec::new();
    for (j, (stages, (wl, df))) in
        layer_stages.into_iter().zip(wls.iter().zip(layer_dataflows)).enumerate()
    {
        if j > 0 {
            links.push(inter_links[j - 1]);
        }
        // The Aggregation/Combination phase pair sits after GAT's leading
        // SDDMM stage, if any.
        let pair = usize::from(model.algorithm.attention().is_some());
        // Intra-layer link between the phase pair, from (possibly re-tiled)
        // stage tilings so Pel and the PP split match what runs.
        let effective = GnnDataflow {
            agg: *match df.phase_order {
                PhaseOrder::AC => stages[pair].tiling(),
                PhaseOrder::CA => stages[pair + 1].tiling(),
            },
            cmb: *match df.phase_order {
                PhaseOrder::AC => stages[pair + 1].tiling(),
                PhaseOrder::CA => stages[pair].tiling(),
            },
            ..*df
        };
        let intra = match df.inter {
            InterPhase::Sequential | InterPhase::SequentialPipeline => Link::Sequential,
            InterPhase::ParallelPipeline => {
                let pel = crate::evaluate::intermediate_pel(wl, &effective)
                    .expect("validated PP dataflow has a granularity");
                Link::Pipelined {
                    pel,
                    split: Some(PartitionSplit {
                        producer_pes: stages[pair].pe_footprint(),
                        consumer_pes: stages[pair + 1].pe_footprint(),
                    }),
                }
            }
        };
        let n = stages.len();
        for (k, stage) in stages.into_iter().enumerate() {
            nodes.push(ChainNode::Single(stage));
            if k + 1 < n {
                // The phase pair gets the dataflow's inter-phase link; every
                // other boundary (SDDMM → aggregation, layer → GIN MLP) is a
                // barrier.
                links.push(if k == pair { intra } else { Link::Sequential });
            }
        }
    }
    Ok(Chain { nodes, links })
}

fn finish(layers: Vec<CostReport>, mlp: Vec<(u64, f64)>) -> ModelReport {
    let mlp_cycles: Vec<u64> = mlp.iter().map(|&(c, _)| c).collect();
    let total_cycles =
        layers.iter().map(|l| l.total_cycles).sum::<u64>() + mlp_cycles.iter().sum::<u64>();
    let mut counters = AccessCounters::default();
    for l in &layers {
        counters.merge(&l.counters);
    }
    let total_energy_pj = layers.iter().map(|l| l.energy.total_pj()).sum::<f64>()
        + mlp.iter().map(|&(_, e)| e).sum::<f64>();
    ModelReport { layers, mlp_cycles, total_cycles, total_energy_pj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::DatasetSpec;

    fn base() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::cora().generate(3), 16)
    }

    #[test]
    fn layer_widths_chain() {
        let model = GnnModel::gcn_2layer(7);
        let wls = model.layer_workloads(&base());
        assert_eq!(wls.len(), 2);
        assert_eq!((wls[0].f, wls[0].g), (1433, 16));
        assert_eq!((wls[1].f, wls[1].g), (16, 7));
        assert!(wls[0].name.contains("[L0]"));
    }

    #[test]
    fn gcn_two_layer_evaluates() {
        let model = GnnModel::gcn_2layer(7);
        let preset = Preset::by_name("SP2").unwrap();
        let cfg = AccelConfig::paper_default();
        let r = evaluate_model(&model, &base(), &preset, &cfg).unwrap();
        assert_eq!(r.layers.len(), 2);
        assert_eq!(r.total_cycles, r.layers[0].total_cycles + r.layers[1].total_cycles);
        // Layer 2 is much cheaper (F = 16 instead of 1433).
        assert!(r.layers[1].total_cycles < r.layers[0].total_cycles / 4);
        assert!(r.total_energy_pj > 0.0);
    }

    #[test]
    fn sage_rejects_ca_presets() {
        // Build a CA pattern preset stand-in by checking the algorithm gate
        // directly (all Table V presets are AC, so the gate is exercised here).
        assert_eq!(Algorithm::GraphSage.allowed_phase_orders(), &[PhaseOrder::AC]);
        assert_eq!(Algorithm::Gcn.allowed_phase_orders().len(), 2);
        let model = GnnModel::sage_2layer(32, 7);
        assert!(model.allowed(PhaseOrder::AC));
        assert!(!model.allowed(PhaseOrder::CA));
    }

    #[test]
    fn gin_adds_mlp_stages() {
        let model = GnnModel::gin(3, 64);
        let preset = Preset::by_name("Seq1").unwrap();
        let cfg = AccelConfig::paper_default();
        let small = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 64);
        let r = evaluate_model(&model, &small, &preset, &cfg).unwrap();
        assert_eq!(r.layers.len(), 3);
        assert_eq!(r.mlp_cycles.len(), 3);
        assert!(r.mlp_cycles.iter().all(|&c| c > 0), "{:?}", r.mlp_cycles);
        let layer_sum: u64 = r.layers.iter().map(|l| l.total_cycles).sum();
        assert_eq!(r.total_cycles, layer_sum + r.mlp_cycles.iter().sum::<u64>());
    }

    #[test]
    fn to_chain_matches_evaluate_model_cycles_for_every_preset() {
        // The chain lowering with all-Sequential inter-layer links must be
        // cycle-faithful to the per-layer cost model, for every inter-phase
        // strategy (Seq, SP incl. SP-Optimized, partitioned PP).
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gcn_2layer(7);
        let b = base();
        for preset in Preset::all() {
            let per_layer = evaluate_model(&model, &b, &preset, &cfg).unwrap();
            let dfs = uniform_layer_dataflows(&model, &b, &preset, &cfg).unwrap();
            let chain = to_chain(&model, &b, &dfs, &[Link::Sequential], &cfg).unwrap();
            let r = crate::multiphase::evaluate_chain(&chain, &cfg).unwrap();
            assert_eq!(
                r.total_cycles, per_layer.total_cycles,
                "{}: chain lowering drifted from evaluate()",
                preset.name
            );
            assert_eq!(r.stages.len(), 4);
        }
    }

    #[test]
    fn to_chain_matches_evaluate_model_cycles_with_activation() {
        // The activation post-stage must preserve the chain lowering's cycle
        // fidelity for every inter-phase strategy, and both elementwise ops.
        let cfg = AccelConfig::paper_default();
        let b = base();
        for op in [ElementwiseOp::Activation, ElementwiseOp::LayerNorm] {
            let model = GnnModel::gcn_2layer(7).with_activation(op);
            for preset in Preset::all() {
                let per_layer = evaluate_model(&model, &b, &preset, &cfg).unwrap();
                let dfs = uniform_layer_dataflows(&model, &b, &preset, &cfg).unwrap();
                let chain = to_chain(&model, &b, &dfs, &[Link::Sequential], &cfg).unwrap();
                let r = crate::multiphase::evaluate_chain(&chain, &cfg).unwrap();
                assert_eq!(r.stages.len(), 6, "{}: 2 layers x (agg+cmb+post)", preset.name);
                assert_eq!(
                    r.total_cycles, per_layer.total_cycles,
                    "{}/{op}: activation chain lowering drifted from evaluate()",
                    preset.name
                );
                // Each layer report carries its post suffix.
                for l in &per_layer.layers {
                    let post = l.post.as_ref().expect("activation layers have post stats");
                    assert!(post.cycles > 0);
                }
            }
        }
    }

    #[test]
    fn activation_makes_models_costlier() {
        let cfg = AccelConfig::paper_default();
        let b = base();
        let preset = Preset::by_name("SP2").unwrap();
        let plain = evaluate_model(&GnnModel::gcn_2layer(7), &b, &preset, &cfg).unwrap();
        let act = evaluate_model(
            &GnnModel::gcn_2layer(7).with_activation(ElementwiseOp::Activation),
            &b,
            &preset,
            &cfg,
        )
        .unwrap();
        let norm = evaluate_model(
            &GnnModel::gcn_2layer(7).with_activation(ElementwiseOp::LayerNorm),
            &b,
            &preset,
            &cfg,
        )
        .unwrap();
        assert!(act.total_cycles > plain.total_cycles);
        assert!(norm.total_cycles > act.total_cycles);
    }

    #[test]
    fn to_chain_matches_evaluate_model_for_gin_with_mlp_stages() {
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gin(3, 64);
        let small = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 64);
        let preset = Preset::by_name("SP2").unwrap();
        let per_layer = evaluate_model(&model, &small, &preset, &cfg).unwrap();
        let dfs = uniform_layer_dataflows(&model, &small, &preset, &cfg).unwrap();
        let chain =
            to_chain(&model, &small, &dfs, &[Link::Sequential, Link::Sequential], &cfg).unwrap();
        let r = crate::multiphase::evaluate_chain(&chain, &cfg).unwrap();
        assert_eq!(r.stages.len(), 9); // 3 layers × (agg + cmb + mlp)
        assert_eq!(r.total_cycles, per_layer.total_cycles);
    }

    #[test]
    fn to_chain_rejects_bad_shapes_and_orders() {
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gcn_2layer(7);
        let b = base();
        let dfs = uniform_layer_dataflows(&model, &b, &Preset::by_name("Seq1").unwrap(), &cfg)
            .unwrap();
        assert!(matches!(
            to_chain(&model, &b, &dfs[..1], &[Link::Sequential], &cfg),
            Err(ModelError::LayerCountMismatch { expected: 2, got: 1 })
        ));
        assert!(matches!(
            to_chain(&model, &b, &dfs, &[], &cfg),
            Err(ModelError::LinkCountMismatch { expected: 1, got: 0 })
        ));
        // CA dataflows are illegal for GraphSAGE.
        let sage = GnnModel::sage_2layer(16, 7);
        let ca = uniform_layer_dataflows(
            &GnnModel::gcn_2layer(7),
            &b,
            &omega_dataflow::presets::seq_ca(),
            &cfg,
        )
        .unwrap();
        assert!(matches!(
            to_chain(&sage, &b, &ca, &[Link::Sequential], &cfg),
            Err(ModelError::PhaseOrderNotAllowed { order: PhaseOrder::CA })
        ));
    }

    #[test]
    fn partitioned_inter_layer_link_retiles_boundary_stages() {
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gcn_2layer(7);
        let b = base();
        let dfs = uniform_layer_dataflows(&model, &b, &Preset::by_name("Seq1").unwrap(), &cfg)
            .unwrap();
        let (elems, row) = model.layer_output_shape(&b, 0);
        assert_eq!(row, 16);
        let link = Link::pipelined_split(elems / 4, 96, 416);
        let chain = to_chain(&model, &b, &dfs, &[link], &cfg).unwrap();
        // Boundary stages (L0's cmb, L1's agg) fit their partitions.
        assert!(chain.nodes.len() == 4);
        let footprint = |i: usize| match &chain.nodes[i] {
            crate::multiphase::ChainNode::Single(s) => s.pe_footprint(),
            _ => unreachable!(),
        };
        assert!(footprint(1) <= 96, "producer footprint {}", footprint(1));
        assert!(footprint(2) <= 416);
        let r = crate::multiphase::evaluate_chain(&chain, &cfg).unwrap();
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn gat_layers_carry_attention_and_are_ac_only() {
        let model = GnnModel::gat_2layer(8, 7);
        assert_eq!(Algorithm::Gat { heads: 8 }.allowed_phase_orders(), &[PhaseOrder::AC]);
        let wls = model.layer_workloads(&base());
        assert_eq!(wls.len(), 2);
        assert_eq!(wls[0].attention.map(|a| a.heads), Some(8));
        assert_eq!((wls[0].f, wls[0].g), (1433, 64));
        assert_eq!((wls[1].f, wls[1].g), (64, 7));
    }

    #[test]
    fn gat_to_chain_matches_evaluate_model_cycles_for_every_preset() {
        // The GAT lowering (SDDMM stage + residency pair) must stay
        // cycle-faithful to the per-layer cost model, exactly like the
        // two-phase algorithms.
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gat_2layer(4, 7);
        let small = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 64);
        for preset in Preset::all() {
            let per_layer = evaluate_model(&model, &small, &preset, &cfg).unwrap();
            let dfs = uniform_layer_dataflows(&model, &small, &preset, &cfg).unwrap();
            let chain = to_chain(&model, &small, &dfs, &[Link::Sequential], &cfg).unwrap();
            let r = crate::multiphase::evaluate_chain(&chain, &cfg).unwrap();
            assert_eq!(r.stages.len(), 6); // 2 layers × (att + agg + cmb)
            assert_eq!(
                r.total_cycles, per_layer.total_cycles,
                "{}: GAT chain lowering drifted from evaluate()",
                preset.name
            );
        }
    }

    #[test]
    fn gat_is_costlier_than_gcn_of_the_same_widths() {
        let cfg = AccelConfig::paper_default();
        let small = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 64);
        let preset = Preset::by_name("Seq1").unwrap();
        let gat = evaluate_model(&GnnModel::gat_2layer(4, 7), &small, &preset, &cfg).unwrap();
        let gcn = evaluate_model(
            &GnnModel {
                name: "GCN-2w".into(),
                algorithm: Algorithm::Gcn,
                layer_widths: vec![64, 7],
                activation: None,
            },
            &small,
            &preset,
            &cfg,
        )
        .unwrap();
        assert!(gat.total_cycles > gcn.total_cycles);
    }

    #[test]
    fn mapper_can_pick_different_dataflows_per_layer() {
        let model = GnnModel::gcn_2layer(7);
        let cfg = AccelConfig::paper_default();
        let fixed = evaluate_model(&model, &base(), &Preset::by_name("Seq1").unwrap(), &cfg).unwrap();
        let mapped = evaluate_model_mapped(&model, &base(), &cfg, Objective::Runtime).unwrap();
        assert!(mapped.total_cycles <= fixed.total_cycles);
        // Both layers were actually searched.
        assert_eq!(mapped.layers.len(), 2);
    }
}
