//! Multi-layer GNN models: evaluating whole networks, not just one layer.
//!
//! Section II-A: "the main computation bottlenecks of various GNN algorithms like
//! GCN, GraphSage, GINConv can be broken down into two phases: Aggregation and
//! Combination. GCNs allow either phase to precede the other while some
//! algorithms like GraphSAGE perform Aggregation before Combination." This module
//! models those algorithms as layer stacks over one graph:
//!
//! * layer `ℓ` consumes the width produced by layer `ℓ−1` (the first layer
//!   consumes the dataset features), so the F↔G asymmetry — and with it the best
//!   dataflow — changes from layer to layer;
//! * the algorithm constrains the legal phase orders (GraphSAGE/GIN are AC-only);
//! * GIN's combination is a 2-layer MLP, adding a third (dense) phase per layer,
//!   which the evaluator costs as an extra GEMM stage.
//!
//! [`evaluate_model`] runs one preset across all layers (re-concretised per
//! layer); [`evaluate_model_mapped`] lets the mapper pick the best preset *per
//! layer* — the cross-layer face of the paper's flexibility argument.

use serde::Serialize;

use omega_accel::engine::{simulate_gemm, EngineOptions, GemmDims, OperandClasses};
use omega_accel::{AccelConfig, AccessCounters, EnergyModel};
use omega_dataflow::presets::Preset;
use omega_dataflow::{InterPhase, PhaseOrder};

use crate::cost::EnergyBreakdown;
use crate::mapper::{best_of, preset_candidates, Objective};
use crate::{evaluate, CostReport, EvalError, GnnWorkload};

/// The GNN algorithm, deciding phase-order legality and per-layer structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Algorithm {
    /// Graph Convolutional Network: either phase order is legal.
    Gcn,
    /// GraphSAGE (mean aggregator): Aggregation must precede Combination.
    GraphSage,
    /// GIN: Aggregation first, then a 2-layer MLP combination with the given
    /// hidden width.
    GinConv {
        /// Hidden width of the per-layer MLP.
        mlp_hidden: usize,
    },
}

impl Algorithm {
    /// Phase orders this algorithm admits (Section II-A).
    pub fn allowed_phase_orders(self) -> &'static [PhaseOrder] {
        match self {
            Algorithm::Gcn => &[PhaseOrder::AC, PhaseOrder::CA],
            Algorithm::GraphSage | Algorithm::GinConv { .. } => &[PhaseOrder::AC],
        }
    }
}

/// A GNN model: an algorithm plus the output width of each layer.
#[derive(Debug, Clone, Serialize)]
pub struct GnnModel {
    /// Model name (for reports).
    pub name: String,
    /// The algorithm.
    pub algorithm: Algorithm,
    /// Output feature width per layer (layer 0 consumes the dataset features).
    pub layer_widths: Vec<usize>,
}

impl GnnModel {
    /// The standard 2-layer GCN (hidden 16, `num_classes` outputs) used by the
    /// Kipf & Welling citation benchmarks.
    pub fn gcn_2layer(num_classes: usize) -> Self {
        GnnModel { name: "GCN-2".into(), algorithm: Algorithm::Gcn, layer_widths: vec![16, num_classes] }
    }

    /// A 2-layer GraphSAGE with the given hidden and output widths.
    pub fn sage_2layer(hidden: usize, num_classes: usize) -> Self {
        GnnModel {
            name: "GraphSAGE-2".into(),
            algorithm: Algorithm::GraphSage,
            layer_widths: vec![hidden, num_classes],
        }
    }

    /// A GIN with `layers` identical layers of the given width (GIN papers use
    /// 5 layers of width 64 on the TU datasets).
    pub fn gin(layers: usize, width: usize) -> Self {
        GnnModel {
            name: format!("GIN-{layers}"),
            algorithm: Algorithm::GinConv { mlp_hidden: width },
            layer_widths: vec![width; layers],
        }
    }

    /// The per-layer workloads for a base (dataset) workload.
    pub fn layer_workloads(&self, base: &GnnWorkload) -> Vec<GnnWorkload> {
        let mut f = base.f;
        self.layer_widths
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let wl = GnnWorkload {
                    name: format!("{}[L{}]", base.name, i),
                    f,
                    g,
                    ..base.clone()
                };
                f = g;
                wl
            })
            .collect()
    }
}

/// Evaluation of one model on one graph.
#[derive(Debug, Clone, Serialize)]
pub struct ModelReport {
    /// Per-layer reports, in layer order.
    pub layers: Vec<CostReport>,
    /// Extra MLP-GEMM cycles per layer (GIN only; zero otherwise).
    pub mlp_cycles: Vec<u64>,
    /// End-to-end cycles (layers are sequential: layer ℓ+1 needs all of ℓ).
    pub total_cycles: u64,
    /// Total buffer energy in pJ.
    pub total_energy_pj: f64,
}

/// Model-evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// The chosen dataflow's phase order is illegal for the algorithm.
    PhaseOrderNotAllowed {
        /// The offending order.
        order: PhaseOrder,
    },
    /// A layer evaluation failed.
    Layer(EvalError),
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::PhaseOrderNotAllowed { order } => {
                write!(f, "phase order {order} is not legal for this algorithm (Section II-A)")
            }
            ModelError::Layer(e) => write!(f, "layer evaluation failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {}

/// Evaluates `model` on `base` using one Table V preset for every layer
/// (re-concretised per layer, since each layer's F/G differ).
pub fn evaluate_model(
    model: &GnnModel,
    base: &GnnWorkload,
    preset: &Preset,
    cfg: &AccelConfig,
) -> Result<ModelReport, ModelError> {
    if !model.allowed(preset.pattern.phase_order) {
        return Err(ModelError::PhaseOrderNotAllowed { order: preset.pattern.phase_order });
    }
    let mut layers = Vec::new();
    let mut mlp_cycles = Vec::new();
    for wl in model.layer_workloads(base) {
        let ctx = wl.tile_context(preset.pattern.phase_order);
        let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        };
        let df = preset.concretize(&ctx, a, c);
        let report = evaluate(&wl, &df, cfg).map_err(ModelError::Layer)?;
        mlp_cycles.push(mlp_stage(model, &wl, &report, cfg));
        layers.push(report);
    }
    Ok(finish(layers, mlp_cycles))
}

/// Evaluates `model` with the mapper choosing the best preset per layer.
pub fn evaluate_model_mapped(
    model: &GnnModel,
    base: &GnnWorkload,
    cfg: &AccelConfig,
    objective: Objective,
) -> Result<ModelReport, ModelError> {
    let mut layers = Vec::new();
    let mut mlp_cycles = Vec::new();
    for wl in model.layer_workloads(base) {
        let candidates: Vec<_> = preset_candidates(&wl, cfg)
            .into_iter()
            .filter(|df| model.allowed(df.phase_order))
            .collect();
        let best = best_of(&candidates, &wl, cfg, objective, 4)
            .ok_or(ModelError::Layer(EvalError::Invalid(
                omega_dataflow::ValidationError::BrokenSpOptimizedTiles { detail: "no candidates" },
            )))?;
        mlp_cycles.push(mlp_stage(model, &wl, &best.report, cfg));
        layers.push(best.report);
    }
    Ok(finish(layers, mlp_cycles))
}

impl GnnModel {
    fn allowed(&self, order: PhaseOrder) -> bool {
        self.algorithm.allowed_phase_orders().contains(&order)
    }
}

/// GIN's second MLP GEMM (`V×G · G×mlp_hidden`), costed with the layer's
/// combination tiling on the full array. Returns `(cycles, energy_pj)`.
fn mlp_stage(model: &GnnModel, wl: &GnnWorkload, report: &CostReport, cfg: &AccelConfig) -> (u64, f64) {
    let Algorithm::GinConv { mlp_hidden } = model.algorithm else {
        return (0, 0.0);
    };
    let dims = GemmDims { v: wl.v, f: wl.g, g: mlp_hidden };
    let stats = simulate_gemm(
        dims,
        &report.dataflow.cmb,
        cfg,
        &OperandClasses::combination_ac(),
        &EngineOptions::plain(cfg.full_bandwidth()),
    );
    let energy = EnergyBreakdown::from_counters(&stats.counters, &EnergyModel::paper_default(), None);
    (stats.cycles, energy.total_pj())
}

fn finish(layers: Vec<CostReport>, mlp: Vec<(u64, f64)>) -> ModelReport {
    let mlp_cycles: Vec<u64> = mlp.iter().map(|&(c, _)| c).collect();
    let total_cycles =
        layers.iter().map(|l| l.total_cycles).sum::<u64>() + mlp_cycles.iter().sum::<u64>();
    let mut counters = AccessCounters::default();
    for l in &layers {
        counters.merge(&l.counters);
    }
    let total_energy_pj = layers.iter().map(|l| l.energy.total_pj()).sum::<f64>()
        + mlp.iter().map(|&(_, e)| e).sum::<f64>();
    ModelReport { layers, mlp_cycles, total_cycles, total_energy_pj }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::DatasetSpec;

    fn base() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::cora().generate(3), 16)
    }

    #[test]
    fn layer_widths_chain() {
        let model = GnnModel::gcn_2layer(7);
        let wls = model.layer_workloads(&base());
        assert_eq!(wls.len(), 2);
        assert_eq!((wls[0].f, wls[0].g), (1433, 16));
        assert_eq!((wls[1].f, wls[1].g), (16, 7));
        assert!(wls[0].name.contains("[L0]"));
    }

    #[test]
    fn gcn_two_layer_evaluates() {
        let model = GnnModel::gcn_2layer(7);
        let preset = Preset::by_name("SP2").unwrap();
        let cfg = AccelConfig::paper_default();
        let r = evaluate_model(&model, &base(), &preset, &cfg).unwrap();
        assert_eq!(r.layers.len(), 2);
        assert_eq!(r.total_cycles, r.layers[0].total_cycles + r.layers[1].total_cycles);
        // Layer 2 is much cheaper (F = 16 instead of 1433).
        assert!(r.layers[1].total_cycles < r.layers[0].total_cycles / 4);
        assert!(r.total_energy_pj > 0.0);
    }

    #[test]
    fn sage_rejects_ca_presets() {
        // Build a CA pattern preset stand-in by checking the algorithm gate
        // directly (all Table V presets are AC, so the gate is exercised here).
        assert_eq!(Algorithm::GraphSage.allowed_phase_orders(), &[PhaseOrder::AC]);
        assert_eq!(Algorithm::Gcn.allowed_phase_orders().len(), 2);
        let model = GnnModel::sage_2layer(32, 7);
        assert!(model.allowed(PhaseOrder::AC));
        assert!(!model.allowed(PhaseOrder::CA));
    }

    #[test]
    fn gin_adds_mlp_stages() {
        let model = GnnModel::gin(3, 64);
        let preset = Preset::by_name("Seq1").unwrap();
        let cfg = AccelConfig::paper_default();
        let small = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 64);
        let r = evaluate_model(&model, &small, &preset, &cfg).unwrap();
        assert_eq!(r.layers.len(), 3);
        assert_eq!(r.mlp_cycles.len(), 3);
        assert!(r.mlp_cycles.iter().all(|&c| c > 0), "{:?}", r.mlp_cycles);
        let layer_sum: u64 = r.layers.iter().map(|l| l.total_cycles).sum();
        assert_eq!(r.total_cycles, layer_sum + r.mlp_cycles.iter().sum::<u64>());
    }

    #[test]
    fn mapper_can_pick_different_dataflows_per_layer() {
        let model = GnnModel::gcn_2layer(7);
        let cfg = AccelConfig::paper_default();
        let fixed = evaluate_model(&model, &base(), &Preset::by_name("Seq1").unwrap(), &cfg).unwrap();
        let mapped = evaluate_model_mapped(&model, &base(), &cfg, Objective::Runtime).unwrap();
        assert!(mapped.total_cycles <= fixed.total_cycles);
        // Both layers were actually searched.
        assert_eq!(mapped.layers.len(), 2);
    }
}
