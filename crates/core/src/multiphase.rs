//! Generalisation beyond GNNs: multiphase sparse/dense kernel chains.
//!
//! Section VI: "the taxonomy and inter-phase analysis ... can be generalized to
//! dataflows for multiphase computations (GEMM-GEMM / GEMM-SpMM / SpMM-SpMM).
//! One immediate example is Deep Learning Recommendation Models that is built
//! of an SpMM and a DenseGEMM in parallel followed by concatenation followed by
//! a DenseGEMM." This module models such chains: stages are individual
//! GEMM/SpMM phase runs, grouped sequentially, pipelined pairwise (the SP/PP
//! composition), or in parallel on partitioned PEs (the DLRM front end).
//!
//! Pipelined links come in two flavours:
//!
//! * **idealised** (`split: None`) — both stages keep the full NoC, an upper
//!   bound no physical schedule can beat (useful as a what-if);
//! * **partitioned** (`split: Some(..)`) — the paper's PP strategy: producer
//!   and consumer run *concurrently* on disjoint PE partitions, each throttled
//!   to its proportional NoC share ([`AccelConfig::partition_bandwidth`]).
//!
//! Whole GNN models lower onto chains via [`crate::models::to_chain`], which
//! the model-level explorer of [`crate::dse::model`] searches over.

use serde::Serialize;

use omega_accel::engine::{
    simulate_elementwise, simulate_gemm, simulate_sddmm, simulate_spmm, ChunkSide, ChunkSpec,
    ElementwiseOp, ElementwiseWorkload, EngineOptions, GemmDims, OperandClasses, SddmmWorkload,
    SpmmWorkload,
};
use omega_accel::{AccelConfig, AccessCounters, EnergyModel, OperandClass, PhaseStats};
use omega_dataflow::IntraTiling;

use crate::cost::EnergyBreakdown;
use crate::pipeline::{pipeline_runtime, resample_durations};

/// One kernel stage of a multiphase chain.
#[derive(Debug, Clone)]
pub enum StageKind {
    /// A dense GEMM with the given dimensions and Combination tiling.
    Gemm {
        /// Matrix dimensions.
        dims: GemmDims,
        /// Concrete tiling (Combination phase).
        tiling: IntraTiling,
    },
    /// A sparse SpMM with the given row degrees, dense width, and Aggregation
    /// tiling.
    Spmm {
        /// Stored non-zeros per row.
        degrees: Vec<usize>,
        /// Dense operand width.
        width: usize,
        /// Concrete tiling (Aggregation phase).
        tiling: IntraTiling,
    },
    /// An SDDMM attention-scoring stage (per-edge dot products masked to the
    /// adjacency, plus the edge-wise softmax) with a `V`/`F`/`N` tiling.
    Sddmm {
        /// Stored non-zeros per row.
        degrees: Vec<usize>,
        /// Per-head dot-product length.
        dot_width: usize,
        /// Attention heads.
        heads: usize,
        /// Concrete tiling (Aggregation dimension set; must satisfy
        /// `omega_dataflow::validate_sddmm`).
        tiling: IntraTiling,
    },
    /// A streaming elementwise/normalization stage (activation, LayerNorm)
    /// over a `rows × width` matrix — a GNN layer's post-phase in a lowered
    /// chain.
    Elementwise {
        /// Rows of the operand matrix.
        rows: usize,
        /// Columns of the operand matrix.
        width: usize,
        /// The operation applied.
        op: ElementwiseOp,
        /// Concrete tiling (either phase's shape; every loop order is legal).
        tiling: IntraTiling,
    },
}

/// A named stage.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage label (for reports).
    pub name: String,
    /// The kernel.
    pub kind: StageKind,
    /// The streaming input is already resident in the PE register files
    /// (SP-Optimized consumer): no GB reads or distribution stalls for it.
    pub input_resident: bool,
    /// The produced matrix stays in the PE register files (SP-Optimized
    /// producer): no GB writes or collection stalls for it.
    pub output_stays_local: bool,
    /// This SpMM stage gathers SDDMM-produced attention scores as its
    /// per-edge values (their traffic lands in the `Score` bucket). Meaningful
    /// on SpMM stages only.
    pub gathers_scores: bool,
    /// The gathered per-edge values (attention scores) are RF-resident — the
    /// preceding SDDMM stage kept them local — so only the CSR structure is
    /// fetched. Meaningful on SpMM stages only; implies [`Self::gathers_scores`].
    pub scores_resident: bool,
}

impl Stage {
    /// Builds a GEMM stage.
    pub fn gemm(name: impl Into<String>, dims: GemmDims, tiling: IntraTiling) -> Self {
        Stage {
            name: name.into(),
            kind: StageKind::Gemm { dims, tiling },
            input_resident: false,
            output_stays_local: false,
            gathers_scores: false,
            scores_resident: false,
        }
    }

    /// Builds an SpMM stage.
    pub fn spmm(name: impl Into<String>, degrees: Vec<usize>, width: usize, tiling: IntraTiling) -> Self {
        Stage {
            name: name.into(),
            kind: StageKind::Spmm { degrees, width, tiling },
            input_resident: false,
            output_stays_local: false,
            gathers_scores: false,
            scores_resident: false,
        }
    }

    /// Builds an SDDMM attention-scoring stage.
    pub fn sddmm(
        name: impl Into<String>,
        degrees: Vec<usize>,
        dot_width: usize,
        heads: usize,
        tiling: IntraTiling,
    ) -> Self {
        Stage {
            name: name.into(),
            kind: StageKind::Sddmm { degrees, dot_width, heads, tiling },
            input_resident: false,
            output_stays_local: false,
            gathers_scores: false,
            scores_resident: false,
        }
    }

    /// Builds an elementwise/normalization stage.
    pub fn elementwise(
        name: impl Into<String>,
        rows: usize,
        width: usize,
        op: ElementwiseOp,
        tiling: IntraTiling,
    ) -> Self {
        Stage {
            name: name.into(),
            kind: StageKind::Elementwise { rows, width, op, tiling },
            input_resident: false,
            output_stays_local: false,
            gathers_scores: false,
            scores_resident: false,
        }
    }

    /// Same stage with SP-Optimized residency flags (intermediate pinned in the
    /// RFs on the flagged side).
    pub fn with_residency(mut self, input_resident: bool, output_stays_local: bool) -> Self {
        self.input_resident = input_resident;
        self.output_stays_local = output_stays_local;
        self
    }

    /// Same stage marked as gathering attention scores as its per-edge values
    /// (`resident` additionally keeps them in the RFs — pairs with an SDDMM
    /// producer whose [`Self::with_residency`] kept its output local).
    pub fn with_scores(mut self, resident: bool) -> Self {
        self.gathers_scores = true;
        self.scores_resident = resident;
        self
    }

    fn run(&self, cfg: &AccelConfig, opts: &EngineOptions) -> PhaseStats {
        let mut opts = *opts;
        opts.input_resident |= self.input_resident;
        opts.output_stays_local |= self.output_stays_local;
        opts.scores_resident |= self.scores_resident;
        match &self.kind {
            StageKind::Gemm { dims, tiling } => {
                simulate_gemm(*dims, tiling, cfg, &OperandClasses::combination_ac(), &opts)
            }
            StageKind::Spmm { degrees, width, tiling } => {
                let wl = SpmmWorkload { degrees, feature_width: *width };
                let classes = if self.gathers_scores || self.scores_resident {
                    OperandClasses::aggregation_gat()
                } else {
                    OperandClasses::aggregation_ac()
                };
                simulate_spmm(&wl, tiling, cfg, &classes, &opts)
            }
            StageKind::Sddmm { degrees, dot_width, heads, tiling } => {
                let wl = SddmmWorkload { degrees, dot_width: *dot_width, heads: *heads };
                simulate_sddmm(&wl, tiling, cfg, &OperandClasses::sddmm(), &opts)
            }
            StageKind::Elementwise { rows, width, op, tiling } => {
                let wl = ElementwiseWorkload { rows: *rows, width: *width, op: *op };
                let classes = OperandClasses::elementwise_on(OperandClass::Output);
                simulate_elementwise(&wl, tiling, cfg, &classes, &opts)
            }
        }
    }

    /// Output elements of this stage (drives pipelined chunking).
    pub fn output_elems(&self) -> u64 {
        match &self.kind {
            StageKind::Gemm { dims, .. } => dims.v as u64 * dims.g as u64,
            StageKind::Spmm { degrees, width, .. } => degrees.len() as u64 * *width as u64,
            StageKind::Sddmm { degrees, heads, .. } => {
                (*heads).max(1) as u64 * degrees.iter().map(|&d| d as u64).sum::<u64>()
            }
            StageKind::Elementwise { rows, width, .. } => *rows as u64 * *width as u64,
        }
    }

    /// The stage's concrete tiling.
    pub fn tiling(&self) -> &IntraTiling {
        match &self.kind {
            StageKind::Gemm { tiling, .. }
            | StageKind::Spmm { tiling, .. }
            | StageKind::Sddmm { tiling, .. }
            | StageKind::Elementwise { tiling, .. } => tiling,
        }
    }

    /// PEs the stage's tiling occupies.
    pub fn pe_footprint(&self) -> usize {
        self.tiling().pe_footprint()
    }

    /// The `Pel` the engine should count on the consume side: the SpMM engine
    /// tracks consumption in edge-visit units (a consumer gathers arbitrary
    /// rows), so convert intermediate elements accordingly (same conversion as
    /// [`evaluate`](crate::evaluate())'s PP path); GEMM consumes in element
    /// units directly.
    fn consume_pel(&self, pel_elems: u64) -> u64 {
        match &self.kind {
            StageKind::Gemm { .. } => pel_elems.max(1),
            StageKind::Spmm { degrees, width, .. } => {
                let total_elems = degrees.len() as u64 * *width as u64;
                let total_visits: u64 =
                    degrees.iter().map(|&d| d as u64).sum::<u64>() * *width as u64;
                crate::evaluate::scale_elems_to_visits(pel_elems, total_elems, total_visits)
            }
            StageKind::Sddmm { degrees, dot_width, heads, .. } => {
                // The SDDMM consumes its feature input per edge visit (MAC
                // units), like the SpMM consume path.
                let h = (*heads).max(1) as u64;
                let total_elems = degrees.len() as u64 * h * *dot_width as u64;
                let total_visits: u64 = degrees.iter().map(|&d| d as u64).sum::<u64>()
                    * h
                    * *dot_width as u64;
                crate::evaluate::scale_elems_to_visits(pel_elems, total_elems, total_visits)
            }
            // The elementwise engine consumes one element per element — no
            // unit conversion needed.
            StageKind::Elementwise { .. } => pel_elems.max(1),
        }
    }
}

/// A node of the chain: a single stage or a parallel group (stages running
/// concurrently on partitioned PEs, like DLRM's bottom MLP ∥ embedding SpMM).
#[derive(Debug, Clone)]
pub enum ChainNode {
    /// One stage on the whole array.
    Single(Stage),
    /// Concurrent stages; the group finishes with its slowest member.
    Parallel(Vec<Stage>),
}

/// A producer/consumer PE partition for a pipelined link (the paper's PP
/// strategy): the two stages run concurrently on disjoint PE allocations, each
/// receiving its proportional NoC bandwidth share.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct PartitionSplit {
    /// PEs allocated to the producing stage.
    pub producer_pes: usize,
    /// PEs allocated to the consuming stage.
    pub consumer_pes: usize,
}

/// How one node hands data to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Link {
    /// Barrier: the next node starts after this one fully finishes.
    Sequential,
    /// Producer/consumer pipelining at `pel` elements per chunk (only between
    /// two `Single` nodes). With `split: None` both stages keep the full NoC
    /// (an idealised upper bound); with `split: Some(..)` they run on
    /// partitioned PEs with proportionally split bandwidth (physical PP).
    Pipelined {
        /// Elements per pipeline chunk.
        pel: u64,
        /// Optional PE partition (`None` = idealised full-resource overlap).
        split: Option<PartitionSplit>,
    },
}

impl Link {
    /// An idealised pipelined link (both stages keep their full resources).
    pub fn pipelined(pel: u64) -> Self {
        Link::Pipelined { pel, split: None }
    }

    /// A partitioned (physical PP) pipelined link.
    pub fn pipelined_split(pel: u64, producer_pes: usize, consumer_pes: usize) -> Self {
        Link::Pipelined { pel, split: Some(PartitionSplit { producer_pes, consumer_pes }) }
    }

    /// `true` for either pipelined flavour.
    pub fn is_pipelined(&self) -> bool {
        matches!(self, Link::Pipelined { .. })
    }
}

/// A multiphase kernel chain.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Nodes in execution order.
    pub nodes: Vec<ChainNode>,
    /// Links between consecutive nodes (`nodes.len() - 1` entries).
    pub links: Vec<Link>,
}

/// Evaluation of one chain.
#[derive(Debug, Clone, Serialize)]
pub struct ChainReport {
    /// Per-stage statistics, flattened in chain order.
    pub stages: Vec<(String, PhaseStats)>,
    /// End-to-end cycles.
    pub total_cycles: u64,
    /// Merged counters.
    pub counters: AccessCounters,
    /// Buffer energy (all non-RF traffic charged at GB rate).
    pub energy: EnergyBreakdown,
    /// Peak on-chip working set in bytes across the chain's execution steps:
    /// concurrent stages (parallel groups, pipelined pairs plus their
    /// ping-pong buffer) add their per-stage peaks, sequential steps take the
    /// maximum — the chain-level analogue of
    /// [`crate::CostReport::buffer_peak_bytes`].
    pub buffer_peak_bytes: u64,
}

/// Structural failure of a chain evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChainError {
    /// `links.len() + 1 != nodes.len()`.
    LinkCountMismatch {
        /// Number of nodes.
        nodes: usize,
        /// Number of links.
        links: usize,
    },
    /// A `Pipelined` link touches a `Parallel` node (pipelining is defined
    /// pairwise between single stages).
    PipelinedParallelNode {
        /// Index of the offending node.
        node: usize,
    },
    /// A stage would have to produce and consume pipelined chunks at once.
    PipelinedBothSides {
        /// Index of the offending node.
        node: usize,
    },
    /// A partitioned link allocates fewer PEs than the stage's tiling needs.
    PartitionTooSmall {
        /// Index of the offending node.
        node: usize,
        /// PEs allocated to the stage.
        allocated: usize,
        /// PEs the stage's tiling occupies.
        footprint: usize,
    },
    /// A partition allocates more PEs than the machine has.
    PartitionOversubscribed {
        /// Producer + consumer allocation.
        allocated: usize,
        /// PEs available.
        available: usize,
    },
}

impl std::fmt::Display for ChainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChainError::LinkCountMismatch { nodes, links } => write!(
                f,
                "need one link between consecutive nodes ({nodes} nodes, {links} links)"
            ),
            ChainError::PipelinedParallelNode { node } => {
                write!(f, "pipelined links require single stages on both ends (node {node})")
            }
            ChainError::PipelinedBothSides { node } => {
                write!(f, "a stage cannot be pipelined on both sides (node {node})")
            }
            ChainError::PartitionTooSmall { node, allocated, footprint } => write!(
                f,
                "partition too small at node {node}: {allocated} PEs allocated, tiling needs {footprint}"
            ),
            ChainError::PartitionOversubscribed { allocated, available } => {
                write!(f, "partition oversubscribed: {allocated} PEs allocated of {available}")
            }
        }
    }
}

impl std::error::Error for ChainError {}

/// Evaluates a chain on the accelerator.
///
/// Returns a [`ChainError`] when the chain is structurally invalid: mismatched
/// link count, a pipelined link touching a `Parallel` node, a stage pipelined
/// on both sides, or a partitioned link whose PE allocation cannot hold its
/// stage (or oversubscribes the machine).
pub fn evaluate_chain(chain: &Chain, cfg: &AccelConfig) -> Result<ChainReport, ChainError> {
    if chain.links.len() + 1 != chain.nodes.len() {
        return Err(ChainError::LinkCountMismatch {
            nodes: chain.nodes.len(),
            links: chain.links.len(),
        });
    }
    let full_bw = cfg.full_bandwidth();
    let mut stages: Vec<(String, PhaseStats)> = Vec::new();
    let mut total: u64 = 0;

    // Pre-run every node, attaching chunk specs where a pipelined link needs
    // producer/consumer timestamps.
    let mut node_stats: Vec<Vec<(String, PhaseStats)>> = Vec::with_capacity(chain.nodes.len());
    for (i, node) in chain.nodes.iter().enumerate() {
        let produce = chain.links.get(i).and_then(|l| match l {
            Link::Pipelined { pel, split } => Some((*pel, *split)),
            Link::Sequential => None,
        });
        let consume = i.checked_sub(1).and_then(|j| match chain.links[j] {
            Link::Pipelined { pel, split } => Some((pel, split)),
            Link::Sequential => None,
        });
        match node {
            ChainNode::Single(stage) => {
                if produce.is_some() && consume.is_some() {
                    return Err(ChainError::PipelinedBothSides { node: i });
                }
                let mut opts = EngineOptions::plain(full_bw);
                if let Some((pel, split)) = produce {
                    if let Some(s) = split {
                        let allocated = s.producer_pes + s.consumer_pes;
                        if allocated > cfg.num_pes {
                            return Err(ChainError::PartitionOversubscribed {
                                allocated,
                                available: cfg.num_pes,
                            });
                        }
                        if stage.pe_footprint() > s.producer_pes {
                            return Err(ChainError::PartitionTooSmall {
                                node: i,
                                allocated: s.producer_pes,
                                footprint: stage.pe_footprint(),
                            });
                        }
                        opts.bandwidth = cfg.partition_bandwidth(s.producer_pes, s.consumer_pes).0;
                    }
                    opts.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel });
                } else if let Some((pel, split)) = consume {
                    if let Some(s) = split {
                        if stage.pe_footprint() > s.consumer_pes {
                            return Err(ChainError::PartitionTooSmall {
                                node: i,
                                allocated: s.consumer_pes,
                                footprint: stage.pe_footprint(),
                            });
                        }
                        opts.bandwidth = cfg.partition_bandwidth(s.producer_pes, s.consumer_pes).1;
                    }
                    opts.chunk =
                        Some(ChunkSpec { side: ChunkSide::Consume, pel: stage.consume_pel(pel) });
                }
                node_stats.push(vec![(stage.name.clone(), stage.run(cfg, &opts))]);
            }
            ChainNode::Parallel(group) => {
                if produce.is_some() || consume.is_some() {
                    return Err(ChainError::PipelinedParallelNode { node: i });
                }
                // Concurrent members occupy disjoint PE partitions: their
                // tilings must fit the machine together, like a pipelined
                // split must.
                let allocated: usize = group.iter().map(Stage::pe_footprint).sum();
                if allocated > cfg.num_pes {
                    return Err(ChainError::PartitionOversubscribed {
                        allocated,
                        available: cfg.num_pes,
                    });
                }
                // NoC bandwidth is shared between the concurrently-running
                // members in proportion to their PE allocations, exactly as the
                // PP cost model splits it between phases (Section V-C3).
                node_stats.push(
                    group
                        .iter()
                        .map(|s| {
                            let opts =
                                EngineOptions::plain(cfg.bandwidth_fraction(s.pe_footprint()));
                            (s.name.clone(), s.run(cfg, &opts))
                        })
                        .collect(),
                );
            }
        }
    }

    // Compose timing, and the working-set peak over the same execution steps:
    // everything running concurrently within a step (a parallel group's
    // members, a pipelined pair plus its ping-pong buffer) adds, sequential
    // steps take the max.
    let phase_peak = |s: &PhaseStats| -> u64 {
        s.gb_peak_bytes.saturating_add(s.rf_peak_bytes.saturating_mul(s.pe_footprint as u64))
    };
    let node_peak = |group: &[(String, PhaseStats)]| -> u64 {
        group.iter().map(|(_, s)| phase_peak(s)).fold(0u64, u64::saturating_add)
    };
    let mut buffer_peak_bytes: u64 = 0;
    let mut i = 0;
    while i < chain.nodes.len() {
        if let Some(Link::Pipelined { pel, .. }) = chain.links.get(i) {
            let producer = &node_stats[i][0].1;
            let consumer = &node_stats[i + 1][0].1;
            let p = producer.chunk_durations();
            let c = consumer.chunk_durations();
            let k = p.len().max(1);
            let c = if c.len() == k { c } else { resample_durations(&c, k) };
            let p = if p.is_empty() { vec![0] } else { p };
            total += pipeline_runtime(&p, &c);
            let step = node_peak(&node_stats[i])
                .saturating_add(node_peak(&node_stats[i + 1]))
                .saturating_add(2 * pel * cfg.word_bytes as u64);
            buffer_peak_bytes = buffer_peak_bytes.max(step);
            i += 2;
        } else {
            let node_cycles = node_stats[i].iter().map(|(_, s)| s.cycles).max().unwrap_or(0);
            total += node_cycles;
            buffer_peak_bytes = buffer_peak_bytes.max(node_peak(&node_stats[i]));
            i += 1;
        }
    }

    let mut counters = AccessCounters::default();
    for group in &node_stats {
        for (_, s) in group {
            counters.merge(&s.counters);
        }
    }
    for group in node_stats {
        stages.extend(group);
    }
    let energy = EnergyBreakdown::from_counters(&counters, &EnergyModel::paper_default(), None);
    Ok(ChainReport { stages, total_cycles: total, counters, energy, buffer_peak_bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_dataflow::{Dim, LoopOrder, Phase};

    fn cmb_tiling(tiles: [usize; 3]) -> IntraTiling {
        IntraTiling::new(
            Phase::Combination,
            LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
            tiles,
        )
    }

    fn agg_tiling(tiles: [usize; 3]) -> IntraTiling {
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
            tiles,
        )
    }

    fn gemm_stage(name: &str, v: usize, f: usize, g: usize) -> Stage {
        Stage::gemm(name, GemmDims { v, f, g }, cmb_tiling([8, 8, 1]))
    }

    #[test]
    fn sequential_chain_adds_cycles() {
        let chain = Chain {
            nodes: vec![
                ChainNode::Single(gemm_stage("a", 32, 16, 8)),
                ChainNode::Single(gemm_stage("b", 32, 8, 4)),
            ],
            links: vec![Link::Sequential],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg).unwrap();
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.total_cycles, r.stages[0].1.cycles + r.stages[1].1.cycles);
        assert!(r.energy.total_pj() > 0.0);
    }

    #[test]
    fn parallel_group_takes_the_max() {
        let chain = Chain {
            nodes: vec![ChainNode::Parallel(vec![
                gemm_stage("big", 64, 64, 16),
                gemm_stage("small", 8, 8, 4),
            ])],
            links: vec![],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg).unwrap();
        let max = r.stages.iter().map(|(_, s)| s.cycles).max().unwrap();
        assert_eq!(r.total_cycles, max);
    }

    #[test]
    fn pipelined_link_overlaps() {
        let producer = Stage::spmm("embed", vec![4; 64], 16, agg_tiling([8, 8, 1]));
        let consumer = gemm_stage("top", 64, 16, 8);
        let pel = 8 * 16; // 8 rows
        let seq = Chain {
            nodes: vec![
                ChainNode::Single(producer.clone()),
                ChainNode::Single(consumer.clone()),
            ],
            links: vec![Link::Sequential],
        };
        let pip = Chain {
            nodes: vec![ChainNode::Single(producer), ChainNode::Single(consumer)],
            links: vec![Link::pipelined(pel)],
        };
        let cfg = AccelConfig::paper_default();
        let r_seq = evaluate_chain(&seq, &cfg).unwrap();
        let r_pip = evaluate_chain(&pip, &cfg).unwrap();
        assert!(r_pip.total_cycles <= r_seq.total_cycles);
        let slower = r_pip.stages.iter().map(|(_, s)| s.cycles).max().unwrap();
        assert!(r_pip.total_cycles >= slower);
    }

    #[test]
    fn partitioned_pipelined_link_throttles_both_sides() {
        let producer = Stage::spmm("embed", vec![4; 64], 16, agg_tiling([8, 8, 1]));
        let consumer = gemm_stage("top", 64, 16, 8);
        let pel = 8 * 16;
        let cfg = AccelConfig::paper_default();
        let ideal = Chain {
            nodes: vec![ChainNode::Single(producer.clone()), ChainNode::Single(consumer.clone())],
            links: vec![Link::pipelined(pel)],
        };
        let split = Chain {
            nodes: vec![ChainNode::Single(producer), ChainNode::Single(consumer)],
            links: vec![Link::pipelined_split(pel, 256, 256)],
        };
        let r_ideal = evaluate_chain(&ideal, &cfg).unwrap();
        let r_split = evaluate_chain(&split, &cfg).unwrap();
        // Halving the NoC share can only slow the stages down.
        assert!(r_split.total_cycles >= r_ideal.total_cycles);
        for ((_, a), (_, b)) in r_split.stages.iter().zip(&r_ideal.stages) {
            assert!(a.cycles >= b.cycles);
        }
    }

    #[test]
    fn chain_buffer_peak_maxes_sequential_and_adds_concurrent() {
        let cfg = AccelConfig::paper_default();
        let big = gemm_stage("big", 64, 64, 16);
        let small = gemm_stage("small", 8, 8, 4);
        let peak_of = |stage: Stage| {
            let chain = Chain { nodes: vec![ChainNode::Single(stage)], links: vec![] };
            evaluate_chain(&chain, &cfg).unwrap().buffer_peak_bytes
        };
        let (pb, ps) = (peak_of(big.clone()), peak_of(small.clone()));
        assert!(pb > 0 && ps > 0);
        // Sequential steps take the max of the per-stage peaks…
        let seq = Chain {
            nodes: vec![ChainNode::Single(big.clone()), ChainNode::Single(small.clone())],
            links: vec![Link::Sequential],
        };
        assert_eq!(evaluate_chain(&seq, &cfg).unwrap().buffer_peak_bytes, pb.max(ps));
        // …a parallel group's members add…
        let par = Chain {
            nodes: vec![ChainNode::Parallel(vec![big.clone(), small.clone()])],
            links: vec![],
        };
        assert_eq!(evaluate_chain(&par, &cfg).unwrap().buffer_peak_bytes, pb + ps);
        // …and a pipelined pair adds both sides plus the 2×Pel ping-pong.
        let pel = 8 * 16;
        let pip = Chain {
            nodes: vec![ChainNode::Single(big), ChainNode::Single(small)],
            links: vec![Link::pipelined(pel)],
        };
        let r = evaluate_chain(&pip, &cfg).unwrap();
        // Chunked runs re-simulate the stages, so compare against the report's
        // own per-stage peaks rather than the unchunked singles.
        let stage_peak = |s: &omega_accel::PhaseStats| {
            s.gb_peak_bytes + s.rf_peak_bytes * s.pe_footprint as u64
        };
        let expected = stage_peak(&r.stages[0].1)
            + stage_peak(&r.stages[1].1)
            + 2 * pel * cfg.word_bytes as u64;
        assert_eq!(r.buffer_peak_bytes, expected);
    }

    #[test]
    fn partition_errors_are_typed() {
        let cfg = AccelConfig::paper_default();
        let mk = |link: Link| Chain {
            nodes: vec![
                ChainNode::Single(gemm_stage("a", 32, 16, 8)), // footprint 64
                ChainNode::Single(gemm_stage("b", 32, 8, 4)),
            ],
            links: vec![link],
        };
        // Producer squeezed below its 64-PE footprint.
        assert_eq!(
            evaluate_chain(&mk(Link::pipelined_split(64, 32, 480)), &cfg).unwrap_err(),
            ChainError::PartitionTooSmall { node: 0, allocated: 32, footprint: 64 }
        );
        // Consumer squeezed below its footprint.
        assert_eq!(
            evaluate_chain(&mk(Link::pipelined_split(64, 448, 32)), &cfg).unwrap_err(),
            ChainError::PartitionTooSmall { node: 1, allocated: 32, footprint: 64 }
        );
        // More PEs than the machine has.
        assert_eq!(
            evaluate_chain(&mk(Link::pipelined_split(64, 400, 200)), &cfg).unwrap_err(),
            ChainError::PartitionOversubscribed { allocated: 600, available: 512 }
        );
    }

    #[test]
    fn oversubscribed_parallel_group_is_an_error() {
        // Two full-array tilings cannot run concurrently: the proportional
        // bandwidth model would otherwise credit the group with more NoC than
        // the machine has.
        let chain = Chain {
            nodes: vec![ChainNode::Parallel(vec![
                Stage::gemm("a", GemmDims { v: 64, f: 64, g: 64 }, cmb_tiling([32, 16, 1])),
                Stage::gemm("b", GemmDims { v: 64, f: 64, g: 64 }, cmb_tiling([32, 16, 1])),
            ])],
            links: vec![],
        };
        assert_eq!(
            evaluate_chain(&chain, &AccelConfig::paper_default()).unwrap_err(),
            ChainError::PartitionOversubscribed { allocated: 1024, available: 512 }
        );
    }

    #[test]
    fn dlrm_shaped_chain_runs() {
        // DLRM: SpMM (embedding gather) ∥ GEMM (bottom MLP) → concat → GEMM (top MLP).
        let chain = Chain {
            nodes: vec![
                ChainNode::Parallel(vec![
                    Stage::spmm("embedding", vec![8; 128], 32, agg_tiling([8, 8, 1])),
                    gemm_stage("bottom-mlp", 128, 32, 32),
                ]),
                ChainNode::Single(gemm_stage("top-mlp", 128, 64, 16)),
            ],
            links: vec![Link::Sequential],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg).unwrap();
        assert_eq!(r.stages.len(), 3);
        assert!(r.total_cycles > 0);
    }

    #[test]
    fn wrong_link_count_is_an_error() {
        let chain = Chain {
            nodes: vec![ChainNode::Single(gemm_stage("a", 4, 4, 4))],
            links: vec![Link::Sequential],
        };
        assert_eq!(
            evaluate_chain(&chain, &AccelConfig::paper_default()).unwrap_err(),
            ChainError::LinkCountMismatch { nodes: 1, links: 1 }
        );
    }

    #[test]
    fn pipelined_parallel_is_an_error() {
        let chain = Chain {
            nodes: vec![
                ChainNode::Parallel(vec![gemm_stage("a", 4, 4, 4)]),
                ChainNode::Single(gemm_stage("b", 4, 4, 4)),
            ],
            links: vec![Link::pipelined(4)],
        };
        assert_eq!(
            evaluate_chain(&chain, &AccelConfig::paper_default()).unwrap_err(),
            ChainError::PipelinedParallelNode { node: 0 }
        );
        // The same link arriving *at* a parallel node is equally rejected.
        let chain = Chain {
            nodes: vec![
                ChainNode::Single(gemm_stage("a", 4, 4, 4)),
                ChainNode::Parallel(vec![gemm_stage("b", 4, 4, 4)]),
            ],
            links: vec![Link::pipelined(4)],
        };
        assert_eq!(
            evaluate_chain(&chain, &AccelConfig::paper_default()).unwrap_err(),
            ChainError::PipelinedParallelNode { node: 1 }
        );
    }

    #[test]
    fn pipelined_both_sides_is_an_error() {
        let chain = Chain {
            nodes: vec![
                ChainNode::Single(gemm_stage("a", 16, 8, 8)),
                ChainNode::Single(gemm_stage("b", 16, 8, 8)),
                ChainNode::Single(gemm_stage("c", 16, 8, 8)),
            ],
            links: vec![Link::pipelined(8), Link::pipelined(8)],
        };
        assert_eq!(
            evaluate_chain(&chain, &AccelConfig::paper_default()).unwrap_err(),
            ChainError::PipelinedBothSides { node: 1 }
        );
    }

    #[test]
    fn elementwise_stage_runs_in_a_chain() {
        let chain = Chain {
            nodes: vec![
                ChainNode::Single(gemm_stage("cmb", 64, 16, 8)),
                ChainNode::Single(Stage::elementwise(
                    "post",
                    64,
                    8,
                    ElementwiseOp::LayerNorm,
                    cmb_tiling([8, 8, 1]),
                )),
            ],
            links: vec![Link::Sequential],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg).unwrap();
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.total_cycles, r.stages[0].1.cycles + r.stages[1].1.cycles);
        // Two sweeps (stats + write-back) over the 64×8 output.
        assert_eq!(r.stages[1].1.macs, 2 * 64 * 8);
        assert_eq!(r.stages[1].1.pe_footprint, 64);
    }

    #[test]
    fn residency_flags_remove_intermediate_traffic() {
        use omega_accel::OperandClass;
        let producer = Stage::spmm("agg", vec![4; 64], 16, agg_tiling([8, 8, 1]));
        let consumer = gemm_stage("cmb", 64, 16, 8);
        let cfg = AccelConfig::paper_default();
        let plain = Chain {
            nodes: vec![ChainNode::Single(producer.clone()), ChainNode::Single(consumer.clone())],
            links: vec![Link::Sequential],
        };
        let resident = Chain {
            nodes: vec![
                ChainNode::Single(producer.with_residency(false, true)),
                ChainNode::Single(consumer.with_residency(true, false)),
            ],
            links: vec![Link::Sequential],
        };
        let r_plain = evaluate_chain(&plain, &cfg).unwrap();
        let r_res = evaluate_chain(&resident, &cfg).unwrap();
        assert!(r_plain.counters.gb_of(OperandClass::Intermediate) > 0);
        assert_eq!(r_res.counters.gb_of(OperandClass::Intermediate), 0);
        assert!(r_res.total_cycles <= r_plain.total_cycles);
    }
}
