//! Generalisation beyond GNNs: multiphase sparse/dense kernel chains.
//!
//! Section VI: "the taxonomy and inter-phase analysis ... can be generalized to
//! dataflows for multiphase computations (GEMM-GEMM / GEMM-SpMM / SpMM-SpMM).
//! One immediate example is Deep Learning Recommendation Models that is built
//! of an SpMM and a DenseGEMM in parallel followed by concatenation followed by
//! a DenseGEMM." This module models such chains: stages are individual
//! GEMM/SpMM phase runs, grouped sequentially, pipelined pairwise (the SP/PP
//! composition), or in parallel on partitioned PEs (the DLRM front end).

use serde::Serialize;

use omega_accel::engine::{
    simulate_gemm, simulate_spmm, ChunkSide, ChunkSpec, EngineOptions, GemmDims, OperandClasses,
    SpmmWorkload,
};
use omega_accel::{AccelConfig, AccessCounters, EnergyModel, PhaseStats};
use omega_dataflow::IntraTiling;

use crate::cost::EnergyBreakdown;
use crate::pipeline::{pipeline_runtime, resample_durations};

/// One kernel stage of a multiphase chain.
#[derive(Debug, Clone)]
pub enum StageKind {
    /// A dense GEMM with the given dimensions and Combination tiling.
    Gemm {
        /// Matrix dimensions.
        dims: GemmDims,
        /// Concrete tiling (Combination phase).
        tiling: IntraTiling,
    },
    /// A sparse SpMM with the given row degrees, dense width, and Aggregation
    /// tiling.
    Spmm {
        /// Stored non-zeros per row.
        degrees: Vec<usize>,
        /// Dense operand width.
        width: usize,
        /// Concrete tiling (Aggregation phase).
        tiling: IntraTiling,
    },
}

/// A named stage.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Stage label (for reports).
    pub name: String,
    /// The kernel.
    pub kind: StageKind,
}

impl Stage {
    /// Builds a GEMM stage.
    pub fn gemm(name: impl Into<String>, dims: GemmDims, tiling: IntraTiling) -> Self {
        Stage { name: name.into(), kind: StageKind::Gemm { dims, tiling } }
    }

    /// Builds an SpMM stage.
    pub fn spmm(name: impl Into<String>, degrees: Vec<usize>, width: usize, tiling: IntraTiling) -> Self {
        Stage { name: name.into(), kind: StageKind::Spmm { degrees, width, tiling } }
    }

    fn run(&self, cfg: &AccelConfig, opts: &EngineOptions) -> PhaseStats {
        match &self.kind {
            StageKind::Gemm { dims, tiling } => {
                simulate_gemm(*dims, tiling, cfg, &OperandClasses::combination_ac(), opts)
            }
            StageKind::Spmm { degrees, width, tiling } => {
                let wl = SpmmWorkload { degrees, feature_width: *width };
                simulate_spmm(&wl, tiling, cfg, &OperandClasses::aggregation_ac(), opts)
            }
        }
    }

    /// Output elements of this stage (drives pipelined chunking).
    pub fn output_elems(&self) -> u64 {
        match &self.kind {
            StageKind::Gemm { dims, .. } => dims.v as u64 * dims.g as u64,
            StageKind::Spmm { degrees, width, .. } => degrees.len() as u64 * *width as u64,
        }
    }
}

/// A node of the chain: a single stage or a parallel group (stages running
/// concurrently on partitioned PEs, like DLRM's bottom MLP ∥ embedding SpMM).
#[derive(Debug, Clone)]
pub enum ChainNode {
    /// One stage on the whole array.
    Single(Stage),
    /// Concurrent stages; the group finishes with its slowest member.
    Parallel(Vec<Stage>),
}

/// How one node hands data to the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Link {
    /// Barrier: the next node starts after this one fully finishes.
    Sequential,
    /// Producer/consumer pipelining at `pel` elements per chunk (only between
    /// two `Single` nodes).
    Pipelined {
        /// Elements per pipeline chunk.
        pel: u64,
    },
}

/// A multiphase kernel chain.
#[derive(Debug, Clone)]
pub struct Chain {
    /// Nodes in execution order.
    pub nodes: Vec<ChainNode>,
    /// Links between consecutive nodes (`nodes.len() - 1` entries).
    pub links: Vec<Link>,
}

/// Evaluation of one chain.
#[derive(Debug, Clone)]
pub struct ChainReport {
    /// Per-stage statistics, flattened in chain order.
    pub stages: Vec<(String, PhaseStats)>,
    /// End-to-end cycles.
    pub total_cycles: u64,
    /// Merged counters.
    pub counters: AccessCounters,
    /// Buffer energy (all non-RF traffic charged at GB rate).
    pub energy: EnergyBreakdown,
}

/// Evaluates a chain on the accelerator.
///
/// # Panics
/// Panics if `links.len() + 1 != nodes.len()`, or if a `Pipelined` link touches
/// a `Parallel` node (pipelining is defined pairwise between single stages).
pub fn evaluate_chain(chain: &Chain, cfg: &AccelConfig) -> ChainReport {
    assert_eq!(chain.links.len() + 1, chain.nodes.len(), "need one link between consecutive nodes");
    let full_bw = cfg.full_bandwidth();
    let mut stages: Vec<(String, PhaseStats)> = Vec::new();
    let mut total: u64 = 0;

    // Pre-run every node, attaching chunk specs where a pipelined link needs
    // producer/consumer timestamps.
    let mut node_stats: Vec<Vec<(String, PhaseStats)>> = Vec::with_capacity(chain.nodes.len());
    for (i, node) in chain.nodes.iter().enumerate() {
        let produce_pel = chain.links.get(i).and_then(|l| match l {
            Link::Pipelined { pel } => Some(*pel),
            Link::Sequential => None,
        });
        let consume_pel = i.checked_sub(1).and_then(|j| match chain.links[j] {
            Link::Pipelined { pel } => Some(pel),
            Link::Sequential => None,
        });
        match node {
            ChainNode::Single(stage) => {
                assert!(
                    produce_pel.is_none() || consume_pel.is_none(),
                    "a stage cannot be pipelined on both sides"
                );
                let mut opts = EngineOptions::plain(full_bw);
                if let Some(pel) = produce_pel {
                    opts.chunk = Some(ChunkSpec { side: ChunkSide::Produce, pel });
                } else if let Some(pel) = consume_pel {
                    opts.chunk = Some(ChunkSpec { side: ChunkSide::Consume, pel });
                }
                node_stats.push(vec![(stage.name.clone(), stage.run(cfg, &opts))]);
            }
            ChainNode::Parallel(group) => {
                assert!(
                    produce_pel.is_none() && consume_pel.is_none(),
                    "pipelined links require single stages on both ends"
                );
                // Split bandwidth evenly across the group; PEs are already
                // partitioned by the stages' tilings.
                let share = omega_accel::BandwidthShare {
                    dist: (full_bw.dist / group.len().max(1)).max(1),
                    red: (full_bw.red / group.len().max(1)).max(1),
                };
                let opts = EngineOptions::plain(share);
                node_stats.push(
                    group.iter().map(|s| (s.name.clone(), s.run(cfg, &opts))).collect(),
                );
            }
        }
    }

    // Compose timing.
    let mut i = 0;
    while i < chain.nodes.len() {
        let pipelined_next = matches!(chain.links.get(i), Some(Link::Pipelined { .. }));
        if pipelined_next {
            let producer = &node_stats[i][0].1;
            let consumer = &node_stats[i + 1][0].1;
            let p = producer.chunk_durations();
            let c = consumer.chunk_durations();
            let k = p.len().max(1);
            let c = if c.len() == k { c } else { resample_durations(&c, k) };
            let p = if p.is_empty() { vec![0] } else { p };
            total += pipeline_runtime(&p, &c);
            i += 2;
        } else {
            let node_cycles = node_stats[i].iter().map(|(_, s)| s.cycles).max().unwrap_or(0);
            total += node_cycles;
            i += 1;
        }
    }

    let mut counters = AccessCounters::default();
    for group in &node_stats {
        for (_, s) in group {
            counters.merge(&s.counters);
        }
    }
    for group in node_stats {
        stages.extend(group);
    }
    let energy = EnergyBreakdown::from_counters(&counters, &EnergyModel::paper_default(), None);
    ChainReport { stages, total_cycles: total, counters, energy }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_dataflow::{Dim, LoopOrder, Phase};

    fn cmb_tiling(tiles: [usize; 3]) -> IntraTiling {
        IntraTiling::new(
            Phase::Combination,
            LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap(),
            tiles,
        )
    }

    fn agg_tiling(tiles: [usize; 3]) -> IntraTiling {
        IntraTiling::new(
            Phase::Aggregation,
            LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap(),
            tiles,
        )
    }

    fn gemm_stage(name: &str, v: usize, f: usize, g: usize) -> Stage {
        Stage::gemm(name, GemmDims { v, f, g }, cmb_tiling([8, 8, 1]))
    }

    #[test]
    fn sequential_chain_adds_cycles() {
        let chain = Chain {
            nodes: vec![
                ChainNode::Single(gemm_stage("a", 32, 16, 8)),
                ChainNode::Single(gemm_stage("b", 32, 8, 4)),
            ],
            links: vec![Link::Sequential],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg);
        assert_eq!(r.stages.len(), 2);
        assert_eq!(r.total_cycles, r.stages[0].1.cycles + r.stages[1].1.cycles);
        assert!(r.energy.total_pj() > 0.0);
    }

    #[test]
    fn parallel_group_takes_the_max() {
        let chain = Chain {
            nodes: vec![ChainNode::Parallel(vec![
                gemm_stage("big", 64, 64, 16),
                gemm_stage("small", 8, 8, 4),
            ])],
            links: vec![],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg);
        let max = r.stages.iter().map(|(_, s)| s.cycles).max().unwrap();
        assert_eq!(r.total_cycles, max);
    }

    #[test]
    fn pipelined_link_overlaps() {
        let producer = Stage::spmm("embed", vec![4; 64], 16, agg_tiling([8, 8, 1]));
        let consumer = gemm_stage("top", 64, 16, 8);
        let pel = 8 * 16; // 8 rows
        let seq = Chain {
            nodes: vec![
                ChainNode::Single(producer.clone()),
                ChainNode::Single(consumer.clone()),
            ],
            links: vec![Link::Sequential],
        };
        let pip = Chain {
            nodes: vec![ChainNode::Single(producer), ChainNode::Single(consumer)],
            links: vec![Link::Pipelined { pel }],
        };
        let cfg = AccelConfig::paper_default();
        let r_seq = evaluate_chain(&seq, &cfg);
        let r_pip = evaluate_chain(&pip, &cfg);
        assert!(r_pip.total_cycles <= r_seq.total_cycles);
        let slower = r_pip.stages.iter().map(|(_, s)| s.cycles).max().unwrap();
        assert!(r_pip.total_cycles >= slower);
    }

    #[test]
    fn dlrm_shaped_chain_runs() {
        // DLRM: SpMM (embedding gather) ∥ GEMM (bottom MLP) → concat → GEMM (top MLP).
        let chain = Chain {
            nodes: vec![
                ChainNode::Parallel(vec![
                    Stage::spmm("embedding", vec![8; 128], 32, agg_tiling([8, 8, 1])),
                    gemm_stage("bottom-mlp", 128, 32, 32),
                ]),
                ChainNode::Single(gemm_stage("top-mlp", 128, 64, 16)),
            ],
            links: vec![Link::Sequential],
        };
        let cfg = AccelConfig::paper_default();
        let r = evaluate_chain(&chain, &cfg);
        assert_eq!(r.stages.len(), 3);
        assert!(r.total_cycles > 0);
    }

    #[test]
    #[should_panic(expected = "one link")]
    fn wrong_link_count_panics() {
        let chain = Chain { nodes: vec![ChainNode::Single(gemm_stage("a", 4, 4, 4))], links: vec![Link::Sequential] };
        evaluate_chain(&chain, &AccelConfig::paper_default());
    }

    #[test]
    #[should_panic(expected = "single stages")]
    fn pipelined_parallel_panics() {
        let chain = Chain {
            nodes: vec![
                ChainNode::Parallel(vec![gemm_stage("a", 4, 4, 4)]),
                ChainNode::Single(gemm_stage("b", 4, 4, 4)),
            ],
            links: vec![Link::Pipelined { pel: 4 }],
        };
        evaluate_chain(&chain, &AccelConfig::paper_default());
    }
}
