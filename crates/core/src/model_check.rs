//! Table III closed forms, used to cross-validate the simulator composition.
//!
//! | Inter-phase | Intermediate buffering | Runtime |
//! |-------------|------------------------|---------|
//! | Seq         | `V×F`                  | `t_AGG + t_CMB` |
//! | SP-Generic  | `Pel`                  | `t_AGG + t_CMB` |
//! | SP-Optimized| `0`                    | `t_AGG + t_CMB − t_load` |
//! | PP          | `2×Pel`                | `Σ max(t_AGG, t_CMB)_Pel` |
//!
//! [`verify_report`] recomputes both columns from a report's own phase
//! statistics and checks the composed numbers match — the property tests in
//! `tests/` run it across every preset × dataset.

use omega_dataflow::{InterPhase, PhaseOrder};

use crate::pipeline::{pipeline_runtime, resample_durations};
use crate::{CostReport, GnnWorkload};

/// A mismatch between a report and the Table III closed forms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelMismatch {
    /// Which quantity disagreed.
    pub what: &'static str,
    /// Value the closed form predicts.
    pub expected: u64,
    /// Value the report carries.
    pub actual: u64,
}

impl std::fmt::Display for ModelMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: expected {} (Table III), got {}", self.what, self.expected, self.actual)
    }
}

impl std::error::Error for ModelMismatch {}

/// The buffering requirement Table III predicts for this dataflow, in elements.
pub fn buffering_formula(report: &CostReport, workload: &GnnWorkload) -> u64 {
    match report.dataflow.inter {
        InterPhase::Sequential => workload.intermediate_elems(report.dataflow.phase_order),
        InterPhase::SequentialPipeline => {
            if report.sp_optimized {
                0
            } else {
                report.pel.unwrap_or(0)
            }
        }
        InterPhase::ParallelPipeline => 2 * report.pel.unwrap_or(0),
    }
}

/// The runtime Table III predicts from the report's own per-phase statistics.
pub fn runtime_formula(report: &CostReport) -> u64 {
    match report.dataflow.inter {
        InterPhase::Sequential | InterPhase::SequentialPipeline => {
            // SP-Optimized's `−t_load` is already inside t_CMB: the consumer was
            // simulated with the intermediate resident, so no reload cycles exist
            // to subtract.
            report.agg.cycles + report.cmb.cycles
        }
        InterPhase::ParallelPipeline => {
            let (producer, consumer) = match report.dataflow.phase_order {
                PhaseOrder::AC => (&report.agg, &report.cmb),
                PhaseOrder::CA => (&report.cmb, &report.agg),
            };
            let p = producer.chunk_durations();
            let c = consumer.chunk_durations();
            let k = p.len().max(1);
            let c = if c.len() == k { c } else { resample_durations(&c, k) };
            let p = if p.is_empty() { vec![0] } else { p };
            pipeline_runtime(&p, &c)
        }
    }
}

/// Checks a report against both closed forms.
pub fn verify_report(report: &CostReport, workload: &GnnWorkload) -> Result<(), ModelMismatch> {
    let expected_buf = buffering_formula(report, workload);
    if expected_buf != report.intermediate_buffer_elems {
        return Err(ModelMismatch {
            what: "intermediate buffering",
            expected: expected_buf,
            actual: report.intermediate_buffer_elems,
        });
    }
    let expected_rt = runtime_formula(report);
    if expected_rt != report.total_cycles {
        return Err(ModelMismatch { what: "runtime", expected: expected_rt, actual: report.total_cycles });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate;
    use omega_accel::AccelConfig;
    use omega_dataflow::presets::Preset;
    use omega_graph::DatasetSpec;

    #[test]
    fn every_preset_matches_table_iii_on_proteins() {
        let d = DatasetSpec::proteins().generate(2);
        let wl = GnnWorkload::gcn_layer(&d, 16);
        let cfg = AccelConfig::paper_default();
        for preset in Preset::all() {
            let ctx = wl.tile_context(preset.pattern.phase_order);
            let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
                (256, 256)
            } else {
                (512, 512)
            };
            let df = preset.concretize(&ctx, a, c);
            let report = evaluate(&wl, &df, &cfg).unwrap();
            verify_report(&report, &wl).unwrap_or_else(|e| panic!("{}: {e}", preset.name));
        }
    }

    #[test]
    fn mismatch_display() {
        let m = ModelMismatch { what: "runtime", expected: 10, actual: 12 };
        assert!(m.to_string().contains("Table III"));
    }
}
