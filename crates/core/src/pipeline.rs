//! The PP pipeline schedule (Section IV-C).

/// Total runtime of a two-stage pipeline over per-chunk durations.
///
/// The producer works on chunk `i` while the consumer processes chunk `i−1`
/// (Fig. 7a); a pipeline step takes as long as the slower phase
/// ("The runtime of one pipeline step is equal to the runtime of the slower
/// phase for producing Pel elements. The total runtime is the sum of runtimes
/// of individual steps `sum(max(t_AGG, t_CMB)_Pel)`", Section IV-C), plus the
/// fill (first producer chunk) and drain (last consumer chunk) steps.
///
/// # Panics
/// Panics if the slices have different lengths (chunk streams must align).
pub fn pipeline_runtime(producer: &[u64], consumer: &[u64]) -> u64 {
    assert_eq!(producer.len(), consumer.len(), "chunk streams must have equal length");
    if producer.is_empty() {
        return 0;
    }
    let k = producer.len();
    let mut total = producer[0];
    for i in 1..k {
        total += producer[i].max(consumer[i - 1]);
    }
    total + consumer[k - 1]
}

/// Redistributes a duration sequence into `k` chunks with the same total.
///
/// Needed when the producer and consumer account chunk progress in different
/// units (e.g. a CA consumer counts edge visits while the producer counts
/// intermediate elements) and their mark counts differ.
///
/// The resampled boundary `i` sits at cumulative time `⌊total·i/k⌋` — i.e. the
/// total is split uniformly (with integer rounding spread across the chunks).
/// This is exactly what the original "piecewise-linear interpolation on the
/// cumulative curve" computed: interpolating *time* targets on a curve whose x
/// and y axes are both cumulative time degenerates to the identity, so the
/// boundary always landed on the target itself. The historical inner
/// interpolation loop (`mark = cum + (target - cum)`) was therefore dead code —
/// and O(k·n), which made pipeline schedules with millions of chunks
/// intractable; this direct form is O(k).
pub fn resample_durations(durations: &[u64], k: usize) -> Vec<u64> {
    if k == 0 {
        return Vec::new();
    }
    let total: u64 = durations.iter().sum();
    if durations.is_empty() || total == 0 {
        return vec![0; k];
    }
    let mut out = Vec::with_capacity(k);
    let mut prev_mark = 0u64;
    for i in 1..=k {
        let mark = (total as u128 * i as u128 / k as u128) as u64;
        out.push(mark - prev_mark);
        prev_mark = mark;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chunk_is_sequential() {
        // One chunk: no overlap possible — fill + drain = both phases in full.
        assert_eq!(pipeline_runtime(&[10], &[7]), 17);
    }

    #[test]
    fn balanced_pipeline_overlaps() {
        // 4 chunks of 10 vs 10: total = 10 (fill) + 3×10 + 10 (drain) = 50,
        // versus 80 sequential.
        assert_eq!(pipeline_runtime(&[10; 4], &[10; 4]), 50);
    }

    #[test]
    fn slower_phase_dominates() {
        // Consumer 3× slower: total ≈ fill + Σ consumer.
        let p = [10u64; 5];
        let c = [30u64; 5];
        assert_eq!(pipeline_runtime(&p, &c), 10 + 4 * 30 + 30);
    }

    #[test]
    fn imbalanced_chunks() {
        let p = [5u64, 50, 5];
        let c = [20u64, 20, 20];
        // 5 + max(50,20) + max(5,20) + 20 = 95.
        assert_eq!(pipeline_runtime(&p, &c), 95);
    }

    #[test]
    fn empty_pipeline() {
        assert_eq!(pipeline_runtime(&[], &[]), 0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        pipeline_runtime(&[1, 2], &[1]);
    }

    #[test]
    fn resample_preserves_total() {
        let d = vec![10u64, 20, 30, 40];
        for k in [1, 2, 3, 4, 5, 8, 100] {
            let r = resample_durations(&d, k);
            assert_eq!(r.len(), k);
            assert_eq!(r.iter().sum::<u64>(), 100, "k={k}");
        }
    }

    #[test]
    fn resample_identity_when_uniform() {
        let d = vec![25u64; 4];
        assert_eq!(resample_durations(&d, 4), d);
    }

    #[test]
    fn resample_is_uniform_regardless_of_input_distribution() {
        // The documented (and historical) semantics: boundaries sit at
        // ⌊total·i/k⌋, so a skewed input resamples exactly like a flat one.
        let skewed = resample_durations(&[1000, 1, 1, 1], 4);
        let flat = resample_durations(&[251, 251, 251, 250], 4);
        assert_eq!(skewed, flat);
        assert_eq!(skewed, vec![250, 251, 251, 251]);
    }

    #[test]
    fn resample_edge_cases() {
        assert_eq!(resample_durations(&[], 3), vec![0, 0, 0]);
        assert_eq!(resample_durations(&[0, 0], 2), vec![0, 0]);
        assert!(resample_durations(&[5, 5], 0).is_empty());
    }
}
