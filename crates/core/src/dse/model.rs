//! Model-level inter-phase DSE: joint search over per-layer dataflows,
//! inter-layer pipelining, and PE partitioning for whole GNN chains.
//!
//! The layer-level explorer of [`crate::dse`] answers "what is the best
//! two-phase dataflow for *this* layer?"; this module answers the question the
//! paper's inter-phase analysis raises for whole models: **how should a
//! multi-layer GNN be mapped end-to-end** when every layer may want a different
//! intra-phase pattern (the F↔G asymmetry flips between layers), consecutive
//! layers may be pipelined instead of barrier-separated, and a pipelined pair
//! must split the PE array and NoC between producer and consumer (the paper's
//! PP strategy, Section IV-C, generalised across layer boundaries).
//!
//! The joint space for a model of `L` layers is the product of
//!
//! * per-layer candidates — the top-K winners of the layer-level exhaustive
//!   search (shared through the [`DseCache`], so repeated studies never
//!   re-search a layer shape), and
//! * per-link strategies — [`Link::Sequential`] or a partitioned
//!   [`Link::Pipelined`] over a small `Pel` ladder derived from the producing
//!   layer's output size and a ladder of PE splits.
//!
//! The product is enumerated with O(1) mixed-radix indexing and driven through
//! the same streaming, thread-deterministic `parallel_search` primitive as
//! the layer-level engine; uniform Table V preset chains are seeded so the
//! reported optimum is never worse than any fixed-preset accelerator.

use std::sync::Mutex;
use std::time::Instant;

use serde::Serialize;

use omega_accel::AccelConfig;
use omega_dataflow::presets::Preset;
use omega_dataflow::GnnDataflow;

use super::{lock_recover, parallel_search, DseCache, DseOptions, ParallelJob, ParetoFront};
use crate::mapper::Objective;
use crate::models::{to_chain, uniform_layer_dataflows, GnnModel, ModelError};
use crate::multiphase::{evaluate_chain, ChainReport, Link, PartitionSplit};
use crate::GnnWorkload;

/// Tuning knobs of a model-level exploration.
#[derive(Debug, Clone, Serialize)]
pub struct ModelDseOptions {
    /// What to minimise (end-to-end over the whole chain).
    pub objective: Objective,
    /// Worker threads (clamped to ≥ 1).
    pub threads: usize,
    /// How many ranked model mappings to keep.
    pub top_k: usize,
    /// Layer-level winners fed into the joint search, per layer.
    pub per_layer_k: usize,
    /// Rungs of the inter-layer `Pel` ladder (chunk sizes per pipelined link).
    pub pel_rungs: usize,
    /// Producer-side PE fractions tried for partitioned inter-layer links.
    pub split_fractions: Vec<f64>,
    /// Mappings per work-queue claim.
    pub chunk: usize,
    /// Lower-bound pruning in the per-layer exhaustive searches
    /// ([`DseOptions::prune`]; ranked-output-neutral — disable to exercise the
    /// brute-force reference arm).
    pub prune: bool,
    /// Phase-simulation memoisation in the per-layer searches
    /// ([`DseOptions::phase_cache`]; ranked-output-neutral).
    pub phase_cache: bool,
    /// Also maintain the (runtime, energy, buffer-footprint) Pareto frontier
    /// over the joint space. The per-layer searches run in Pareto mode too —
    /// their frontiers feed footprint-diverse layer candidates into the joint
    /// space — and [`ModelExploreOutcome::frontier`] is filled. The scalar
    /// ranked list is unaffected (the joint sweep never prunes).
    pub pareto: bool,
}

impl Default for ModelDseOptions {
    fn default() -> Self {
        ModelDseOptions {
            objective: Objective::Runtime,
            threads: 4,
            top_k: 5,
            per_layer_k: 4,
            pel_rungs: 3,
            split_fractions: vec![0.25, 0.5, 0.75],
            chunk: 16,
            prune: true,
            phase_cache: true,
            pareto: false,
        }
    }
}

impl ModelDseOptions {
    /// Default options for `objective`.
    pub fn new(objective: Objective) -> Self {
        ModelDseOptions { objective, ..Default::default() }
    }
}

/// One point of the joint model space: a dataflow per layer plus an
/// inter-layer link per layer boundary.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ModelMapping {
    /// Concrete dataflow of each layer, in layer order.
    pub layer_dataflows: Vec<GnnDataflow>,
    /// Inter-layer links (`layers - 1` entries).
    pub links: Vec<Link>,
}

impl ModelMapping {
    /// Pipelined inter-layer links in this mapping.
    pub fn pipelined_inter_links(&self) -> usize {
        self.links.iter().filter(|l| l.is_pipelined()).count()
    }

    /// `true` when any layer pipelines internally (SP/PP) or any inter-layer
    /// link is pipelined.
    pub fn is_pipelined(&self) -> bool {
        self.pipelined_inter_links() > 0
            || self
                .layer_dataflows
                .iter()
                .any(|df| df.inter != omega_dataflow::InterPhase::Sequential)
    }
}

impl std::fmt::Display for ModelMapping {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, df) in self.layer_dataflows.iter().enumerate() {
            if i > 0 {
                match self.links[i - 1] {
                    Link::Sequential => write!(f, " ⇒ ")?,
                    Link::Pipelined { pel, split: None } => write!(f, " ∥{pel}⇒ ")?,
                    Link::Pipelined { pel, split: Some(s) } => {
                        write!(f, " ∥{pel}@{}/{}⇒ ", s.producer_pes, s.consumer_pes)?
                    }
                }
            }
            write!(f, "{df}")?;
        }
        Ok(())
    }
}

/// The enumerable joint space: per-layer candidate lists × per-link options,
/// indexed mixed-radix in O(1) — never materialised.
#[derive(Debug, Clone)]
pub struct ModelSpace {
    /// Candidate dataflows per layer.
    pub layer_candidates: Vec<Vec<GnnDataflow>>,
    /// Link options per layer boundary.
    pub link_options: Vec<Vec<Link>>,
}

impl ModelSpace {
    /// Total number of joint mappings.
    pub fn len(&self) -> usize {
        self.layer_candidates
            .iter()
            .map(Vec::len)
            .chain(self.link_options.iter().map(Vec::len))
            .fold(1usize, |a, b| a.saturating_mul(b))
    }

    /// `true` when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.layer_candidates.iter().any(Vec::is_empty)
            || self.link_options.iter().any(Vec::is_empty)
    }

    /// Mapping `i` of the space (layers are the least-significant digits).
    ///
    /// # Panics
    /// Panics if `i >= self.len()`.
    pub fn mapping(&self, mut i: usize) -> ModelMapping {
        let mut layer_dataflows = Vec::with_capacity(self.layer_candidates.len());
        for cands in &self.layer_candidates {
            layer_dataflows.push(cands[i % cands.len()]);
            i /= cands.len();
        }
        let mut links = Vec::with_capacity(self.link_options.len());
        for opts in &self.link_options {
            links.push(opts[i % opts.len()]);
            i /= opts.len();
        }
        assert_eq!(i, 0, "mapping index out of range");
        ModelMapping { layer_dataflows, links }
    }
}

/// One ranked model-level winner.
#[derive(Debug, Clone, Serialize)]
pub struct RankedModelMapping {
    /// The joint mapping.
    pub mapping: ModelMapping,
    /// Its chain evaluation (chunk timelines stripped).
    pub report: ChainReport,
    /// Objective value (lower is better).
    pub score: f64,
    /// Index in the joint enumeration (`None` for uniform-preset seeds).
    pub index: Option<usize>,
}

/// The best uniform (one Table V preset for every layer, sequential between
/// layers) chain — what a fixed-dataflow accelerator achieves on the model.
#[derive(Debug, Clone, Serialize)]
pub struct UniformBaseline {
    /// Preset name.
    pub preset: String,
    /// End-to-end cycles of the uniform chain.
    pub total_cycles: u64,
    /// Objective value.
    pub score: f64,
}

/// One point of a model-level (runtime, energy, buffer-footprint) Pareto
/// frontier: no other evaluated chain mapping is at least as good on every
/// axis and strictly better on one.
#[derive(Debug, Clone, Serialize)]
pub struct ModelParetoPoint {
    /// The joint mapping.
    pub mapping: ModelMapping,
    /// Its chain evaluation (chunk timelines stripped).
    pub report: ChainReport,
    /// Runtime axis (end-to-end cycles).
    pub runtime_cycles: u64,
    /// Energy axis (total pJ).
    pub energy_pj: f64,
    /// Buffer-footprint axis (peak on-chip working set, bytes).
    pub buffer_peak_bytes: u64,
    /// Index in the joint enumeration (`None` for uniform-preset seeds).
    pub index: Option<usize>,
}

/// The result of one model-level exploration.
#[derive(Debug, Clone, Serialize)]
pub struct ModelExploreOutcome {
    /// Model name.
    pub model: String,
    /// Base workload (dataset) name.
    pub workload: String,
    /// Winners, best first, deduplicated by mapping (≤ `top_k`).
    pub ranked: Vec<RankedModelMapping>,
    /// The chain-level Pareto frontier in runtime order, when
    /// [`ModelDseOptions::pareto`] is set (empty otherwise).
    pub frontier: Vec<ModelParetoPoint>,
    /// Size of the joint space.
    pub space: usize,
    /// Candidates per layer.
    pub layer_candidates: Vec<usize>,
    /// Link options per layer boundary.
    pub link_options: Vec<usize>,
    /// Successful chain evaluations (space + uniform seeds).
    pub evaluated: usize,
    /// Mappings rejected as structurally infeasible (e.g. a stage pipelined on
    /// both sides, or a partition too small for its tiling).
    pub skipped: usize,
    /// Uniform preset chains seeded.
    pub seeded: usize,
    /// Phase simulations the per-layer exhaustive searches actually ran
    /// (summed over the distinct layer shapes; repeated shapes served from the
    /// [`DseCache`] re-report their original search's counters).
    pub phase_sims: usize,
    /// Per-layer phase-simulation lookups answered from the
    /// [`crate::PhaseSimCache`] instead of re-running an engine.
    pub phase_cache_hits: usize,
    /// The best uniform Table V preset applied to every layer.
    pub uniform: Option<UniformBaseline>,
    /// Wall-clock of the joint search in milliseconds (excludes the cached
    /// layer-level searches).
    pub elapsed_ms: f64,
    /// Worker threads used.
    pub threads: usize,
}

impl ModelExploreOutcome {
    /// The optimum, if any mapping evaluated successfully.
    pub fn best(&self) -> Option<&RankedModelMapping> {
        self.ranked.first()
    }

    /// Uniform-baseline objective score over winner score (≥ 1 when both
    /// exist, under *any* objective — uniform chains are seeded into the
    /// search): how much per-layer specialisation + pipelining saves
    /// end-to-end.
    pub fn model_gap(&self) -> Option<f64> {
        let best = self.best()?;
        let uniform = self.uniform.as_ref()?;
        (best.score > 0.0).then(|| uniform.score / best.score)
    }
}

/// The `Pel` ladder for a producing layer handing `total` intermediate elements
/// downstream in rows of `row` elements: geometrically descending chunk sizes
/// (`total/4`, `total/16`, …), clamped to at least one output row, deduplicated.
pub fn pel_ladder(total: u64, row: u64, rungs: usize) -> Vec<u64> {
    let row = row.max(1);
    let mut out: Vec<u64> = Vec::with_capacity(rungs);
    for i in 0..rungs as u32 {
        // Saturate deep rungs to zero instead of overflowing the shift width.
        let shifted = total.checked_shr(2 * (i + 1)).unwrap_or(0);
        let pel = shifted.max(row);
        if !out.contains(&pel) {
            out.push(pel);
        }
    }
    out
}

/// Link options for one layer boundary: `Sequential`, plus a partitioned
/// `Pipelined` per (`Pel` rung × producer split fraction).
fn link_options(
    producer_elems: u64,
    row_elems: u64,
    cfg: &AccelConfig,
    opts: &ModelDseOptions,
) -> Vec<Link> {
    let mut out = vec![Link::Sequential];
    let splits: Vec<PartitionSplit> = opts
        .split_fractions
        .iter()
        .map(|&f| {
            let hi = cfg.num_pes.saturating_sub(1).max(1);
            let producer_pes = ((cfg.num_pes as f64 * f).round() as usize).clamp(1, hi);
            PartitionSplit { producer_pes, consumer_pes: (cfg.num_pes - producer_pes).max(1) }
        })
        .collect();
    for pel in pel_ladder(producer_elems, row_elems, opts.pel_rungs) {
        for &split in &splits {
            let link = Link::Pipelined { pel, split: Some(split) };
            if !out.contains(&link) {
                out.push(link);
            }
        }
    }
    out
}

/// The layer-level candidate list for one layer workload: the top winners of
/// the exhaustive per-layer search (via `cache`), filtered to the phase orders
/// the algorithm admits, topped up with the workload-tuned presets when the
/// filter bites, truncated to `per_layer_k`.
fn layer_candidate_list(
    model: &GnnModel,
    wl: &GnnWorkload,
    cfg: &AccelConfig,
    opts: &ModelDseOptions,
    cache: &DseCache,
) -> (Vec<GnnDataflow>, usize, usize) {
    let allowed = |df: &GnnDataflow| {
        model.algorithm.allowed_phase_orders().contains(&df.phase_order)
            && (wl.attention.is_none() || omega_dataflow::validate_sddmm(&df.agg).is_ok())
    };
    let layer_opts = DseOptions {
        objective: opts.objective,
        threads: opts.threads,
        top_k: opts.per_layer_k + 4, // headroom for the phase-order filter
        refine_steps: 0,
        chunk: 64,
        seed_presets: true,
        // The per-layer searches are the model explorer's hot path: the
        // factored/pruned engine is ranked-output-neutral, but the reference
        // arm stays reachable for the bit-identity acceptance tests.
        prune: opts.prune,
        phase_cache: opts.phase_cache,
        // Pareto model search draws layer candidates from the layer frontier
        // (ranked = frontier in runtime order there), so footprint-diverse
        // dataflows enter the joint space.
        pareto: opts.pareto,
    };
    let outcome = cache.explore(wl, cfg, &layer_opts);
    let mut cands: Vec<GnnDataflow> =
        outcome.ranked.iter().map(|r| r.dataflow).filter(allowed).collect();
    if cands.len() < opts.per_layer_k {
        for df in crate::mapper::extended_candidates(wl, cfg) {
            if allowed(&df) && !cands.contains(&df) {
                cands.push(df);
            }
        }
    }
    cands.truncate(opts.per_layer_k.max(1));
    (cands, outcome.phase_sims, outcome.phase_cache_hits)
}

/// Builds the joint model space for `model` on `base` — exposed so tests can
/// brute-force the exact space the parallel search streams over.
pub fn build_space(
    model: &GnnModel,
    base: &GnnWorkload,
    cfg: &AccelConfig,
    opts: &ModelDseOptions,
    cache: &DseCache,
) -> ModelSpace {
    build_space_with_stats(model, base, cfg, opts, cache).0
}

/// [`build_space`] plus the summed `(phase_sims, phase_cache_hits)` of the
/// distinct per-layer searches it triggered.
fn build_space_with_stats(
    model: &GnnModel,
    base: &GnnWorkload,
    cfg: &AccelConfig,
    opts: &ModelDseOptions,
    cache: &DseCache,
) -> (ModelSpace, usize, usize) {
    let wls = model.layer_workloads(base);
    // Layers with the same (F, G) shape share one candidate search (the graph
    // is identical across layers, so shape determines the result).
    let mut by_shape: Vec<((usize, usize), Vec<GnnDataflow>)> = Vec::new();
    let mut layer_candidates = Vec::with_capacity(wls.len());
    let mut phase_sims = 0;
    let mut phase_cache_hits = 0;
    for wl in &wls {
        let key = (wl.f, wl.g);
        let cands = match by_shape.iter().find(|(k, _)| *k == key) {
            Some((_, c)) => c.clone(),
            None => {
                let (c, sims, hits) = layer_candidate_list(model, wl, cfg, opts, cache);
                phase_sims += sims;
                phase_cache_hits += hits;
                by_shape.push((key, c.clone()));
                c
            }
        };
        layer_candidates.push(cands);
    }
    let link_options = (0..wls.len().saturating_sub(1))
        .map(|j| {
            let (elems, row) = model.layer_output_shape(base, j);
            link_options(elems, row, cfg, opts)
        })
        .collect();
    (ModelSpace { layer_candidates, link_options }, phase_sims, phase_cache_hits)
}

/// The Pareto axis vector of one evaluated chain: end-to-end cycles, total
/// energy (pJ), and the chain's composed working-set peak (bytes).
fn chain_axes(report: &ChainReport) -> [f64; 3] {
    [report.total_cycles as f64, report.energy.total_pj(), report.buffer_peak_bytes as f64]
}

/// Lowers and evaluates one joint mapping end-to-end, returning its objective
/// value and chain report.
pub fn evaluate_mapping(
    model: &GnnModel,
    base: &GnnWorkload,
    mapping: &ModelMapping,
    cfg: &AccelConfig,
    objective: Objective,
) -> Result<(f64, ChainReport), ModelError> {
    let chain = to_chain(model, base, &mapping.layer_dataflows, &mapping.links, cfg)?;
    let report = evaluate_chain(&chain, cfg)?;
    Ok((objective.score_chain(&report), report))
}

/// Jointly explores per-layer dataflows × inter-layer links × PE partitions
/// for `model` on `base`.
///
/// Deterministic: the ranked result is independent of `threads` and `chunk`
/// (ties broken by enumeration index). Layer-level searches go through
/// `cache`, so repeated model studies over the same layer shapes never
/// re-search the 6,656-pattern space.
pub fn explore_model(
    model: &GnnModel,
    base: &GnnWorkload,
    cfg: &AccelConfig,
    opts: &ModelDseOptions,
    cache: &DseCache,
) -> ModelExploreOutcome {
    let t0 = Instant::now();
    let (space, phase_sims, phase_cache_hits) =
        build_space_with_stats(model, base, cfg, opts, cache);
    let total = space.len();
    let threads = opts.threads.max(1);

    let space_ref = &space;
    let gen = move |i: usize| space_ref.mapping(i);
    let score_mapping = |m: &ModelMapping| -> Option<(f64, ChainReport)> {
        let (s, mut r) = evaluate_mapping(model, base, m, cfg, opts.objective).ok()?;
        // Winners don't need the per-chunk pipeline timelines; keep retention
        // memory bounded (re-evaluate a winner to recover them).
        for (_, stats) in &mut r.stages {
            stats.chunk_marks = Vec::new();
        }
        Some((s, r))
    };
    // The joint sweep never prunes, so the Pareto frontier can ride along the
    // scalar search without affecting it: every evaluated chain is offered.
    let front: Mutex<ParetoFront<ModelMapping, ChainReport>> = Mutex::new(ParetoFront::new());
    let front_ref = &front;
    let pareto = opts.pareto;
    let score = |m: &ModelMapping, index: usize, _thr: f64| -> super::Verdict<ChainReport> {
        match score_mapping(m) {
            Some((s, r)) => {
                if pareto {
                    lock_recover(front_ref).offer(
                        index,
                        m.clone(),
                        r.clone(),
                        chain_axes(&r),
                    );
                }
                super::Verdict::Score(s, r)
            }
            None => super::Verdict::Skip,
        }
    };
    let job = ParallelJob {
        k: opts.top_k,
        threads,
        chunk: opts.chunk,
        init_threshold: f64::INFINITY,
        cancel: None,
    };
    let (mut merged, mut evaluated, skipped, _pruned) =
        parallel_search(total, &gen, &score, &job);

    // Seed the uniform Table V preset chains (one preset for every layer,
    // sequential between layers): the reported optimum can never lose to a
    // fixed-dataflow accelerator, and the best of them is the baseline the
    // model gap is measured against.
    let mut uniform: Option<UniformBaseline> = None;
    let mut seeded = 0;
    for (j, preset) in Preset::all().iter().enumerate() {
        let Ok(layer_dataflows) = uniform_layer_dataflows(model, base, preset, cfg) else {
            continue;
        };
        let links = vec![Link::Sequential; layer_dataflows.len().saturating_sub(1)];
        let mapping = ModelMapping { layer_dataflows, links };
        if let Some((s, r)) = score_mapping(&mapping) {
            evaluated += 1;
            seeded += 1;
            if uniform.as_ref().is_none_or(|u| s < u.score) {
                uniform = Some(UniformBaseline {
                    preset: preset.name.to_string(),
                    total_cycles: r.total_cycles,
                    score: s,
                });
            }
            if pareto {
                lock_recover(&front).offer(
                    total + j,
                    mapping.clone(),
                    r.clone(),
                    chain_axes(&r),
                );
            }
            merged.push((s, total + j, mapping, r));
        }
    }

    let frontier: Vec<ModelParetoPoint> = if pareto {
        front
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .into_sorted()
            .into_iter()
            .map(|(index, mapping, report, axes)| ModelParetoPoint {
                mapping,
                runtime_cycles: report.total_cycles,
                energy_pj: axes[1],
                buffer_peak_bytes: report.buffer_peak_bytes,
                report,
                index: (index < total).then_some(index),
            })
            .collect()
    } else {
        Vec::new()
    };

    // Rank: ascending (score, index), deduplicated by mapping. `total_cmp`
    // keys so a NaN objective score cannot panic the sort (it ranks last).
    merged.sort_by(|a, b| super::key_cmp((a.0, a.1), (b.0, b.1)));
    let mut ranked: Vec<RankedModelMapping> = Vec::with_capacity(opts.top_k.max(1));
    for (score, index, mapping, report) in merged {
        if ranked.len() == opts.top_k.max(1) {
            break;
        }
        if ranked.iter().any(|r| r.mapping == mapping) {
            continue;
        }
        ranked.push(RankedModelMapping {
            mapping,
            report,
            score,
            index: (index < total).then_some(index),
        });
    }

    ModelExploreOutcome {
        model: model.name.clone(),
        workload: base.name.clone(),
        ranked,
        frontier,
        space: total,
        layer_candidates: space.layer_candidates.iter().map(Vec::len).collect(),
        link_options: space.link_options.iter().map(Vec::len).collect(),
        evaluated,
        skipped,
        seeded,
        phase_sims,
        phase_cache_hits,
        uniform,
        elapsed_ms: t0.elapsed().as_secs_f64() * 1e3,
        threads,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::DatasetSpec;

    fn base() -> GnnWorkload {
        GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 16)
    }

    fn quick_opts() -> ModelDseOptions {
        ModelDseOptions {
            threads: 2,
            top_k: 4,
            per_layer_k: 3,
            pel_rungs: 2,
            split_fractions: vec![0.25, 0.5],
            ..Default::default()
        }
    }

    #[test]
    fn pel_ladder_is_descending_row_clamped_and_deduped() {
        let l = pel_ladder(4096, 16, 3);
        assert_eq!(l, vec![1024, 256, 64]);
        // Clamping collapses small outputs onto one rung.
        assert_eq!(pel_ladder(64, 32, 3), vec![32]);
        assert_eq!(pel_ladder(0, 0, 2), vec![1]);
        // Deep ladders saturate instead of overflowing the u64 shift width.
        let deep = pel_ladder(u64::MAX, 8, 40);
        assert_eq!(deep.last(), Some(&8));
        assert!(deep.windows(2).all(|w| w[0] > w[1]), "{deep:?}");
    }

    #[test]
    fn space_indexing_is_a_bijection() {
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gcn_2layer(7);
        let cache = DseCache::new();
        let space = build_space(&model, &base(), &cfg, &quick_opts(), &cache);
        assert_eq!(space.layer_candidates.len(), 2);
        assert_eq!(space.link_options.len(), 1);
        assert_eq!(
            space.len(),
            space.layer_candidates[0].len()
                * space.layer_candidates[1].len()
                * space.link_options[0].len()
        );
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.len() {
            let m = space.mapping(i);
            assert!(seen.insert(format!("{m}")), "duplicate mapping at {i}");
        }
        assert_eq!(seen.len(), space.len());
    }

    #[test]
    fn winner_is_never_worse_than_the_uniform_baseline() {
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::gcn_2layer(7);
        let cache = DseCache::new();
        let out = explore_model(&model, &base(), &cfg, &quick_opts(), &cache);
        let best = out.best().expect("non-empty space");
        let uniform = out.uniform.as_ref().expect("presets evaluated");
        assert!(best.score <= uniform.score);
        assert!(out.model_gap().expect("both present") >= 1.0 - 1e-12);
        assert!(out.evaluated + out.skipped >= out.space);
        // Ranked ascending, deduplicated.
        for w in out.ranked.windows(2) {
            assert!(w[0].score <= w[1].score);
            assert!(w[0].mapping != w[1].mapping);
        }
    }

    #[test]
    fn activation_threads_through_the_model_search() {
        use omega_accel::engine::ElementwiseOp;
        let cfg = AccelConfig::paper_default();
        let cache = DseCache::new();
        let plain = explore_model(&GnnModel::gcn_2layer(7), &base(), &cfg, &quick_opts(), &cache);
        let model = GnnModel::gcn_2layer(7).with_activation(ElementwiseOp::Activation);
        let act = explore_model(&model, &base(), &cfg, &quick_opts(), &cache);
        let best = act.best().expect("non-empty space");
        // The winner's lowered chain carries one post stage per layer.
        let posts = best.report.stages.iter().filter(|(n, _)| n.ends_with(".post")).count();
        assert_eq!(posts, 2);
        // The activation suffix can only cost cycles on top of the same space.
        assert!(best.score >= plain.best().unwrap().score);
        // The post op keyed the layer-level searches separately: two shapes
        // each searched with and without it.
        assert_eq!(cache.searches(), 4);
        // The ranked result stays thread-invariant.
        let single = explore_model(
            &model,
            &base(),
            &cfg,
            &ModelDseOptions { threads: 1, ..quick_opts() },
            &cache,
        );
        let sb = single.best().unwrap();
        assert_eq!(sb.score, best.score);
        assert_eq!(format!("{}", sb.mapping), format!("{}", best.mapping));
    }

    #[test]
    fn sage_candidates_are_ac_only() {
        let cfg = AccelConfig::paper_default();
        let model = GnnModel::sage_2layer(16, 7);
        let cache = DseCache::new();
        let space = build_space(&model, &base(), &cfg, &quick_opts(), &cache);
        for cands in &space.layer_candidates {
            assert!(!cands.is_empty());
            assert!(cands
                .iter()
                .all(|df| df.phase_order == omega_dataflow::PhaseOrder::AC));
        }
    }

    #[test]
    fn identical_layer_shapes_share_one_search() {
        let cfg = AccelConfig::paper_default();
        // GIN layers 1.. all have (F, G) = (64, 64): one search serves them.
        let model = GnnModel::gin(3, 64);
        let wl = GnnWorkload::gcn_layer(&DatasetSpec::mutag().generate(4), 64);
        let cache = DseCache::new();
        let space = build_space(&model, &wl, &cfg, &quick_opts(), &cache);
        assert_eq!(space.layer_candidates.len(), 3);
        assert_eq!(space.layer_candidates[1], space.layer_candidates[2]);
        // Two shapes → two layer-level searches, not three.
        assert_eq!(cache.searches(), 2);
    }
}
