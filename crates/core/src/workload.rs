//! GNN layer workloads: what the cost model evaluates a dataflow against.

use serde::{Deserialize, Serialize};

use omega_accel::engine::ElementwiseOp;
use omega_dataflow::tiles::TileContext;
use omega_dataflow::PhaseOrder;
use omega_graph::{Dataset, Graph};

/// The kind of one phase of a GNN layer — which engine simulates it.
///
/// Two-phase layers (GCN, GraphSAGE, GIN) are an [`PhaseKind::Spmm`] +
/// [`PhaseKind::Gemm`] pair in either order; attention layers (GAT) prepend an
/// [`PhaseKind::Sddmm`] scoring phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum PhaseKind {
    /// Adjacency-masked dense-dense scoring (attention `QKᵀ` + softmax).
    Sddmm,
    /// Sparse aggregation over the CSR adjacency.
    Spmm,
    /// Dense combination with the weight matrix.
    Gemm,
    /// Streaming elementwise/normalization post-phase (activation, LayerNorm)
    /// over the layer's `V×G` output.
    Elementwise,
}

/// The attention structure of a GAT-style layer: how many heads score every
/// edge. The per-head dot-product length is `F / heads` (the feature width
/// splits across heads), clamped to ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Deserialize, Serialize)]
pub struct AttentionSpec {
    /// Attention heads (≥ 1).
    pub heads: usize,
}

impl AttentionSpec {
    /// An attention spec with `heads` heads (clamped to ≥ 1).
    pub fn new(heads: usize) -> Self {
        AttentionSpec { heads: heads.max(1) }
    }

    /// The per-head dot-product length for an input feature width `f`.
    /// (`heads` is clamped defensively: the field is public, so a literal can
    /// bypass the [`Self::new`] clamp.)
    pub fn dot_width(&self, f: usize) -> usize {
        (f / self.heads.max(1)).max(1)
    }
}

/// One GCN-style layer over one (possibly batched) graph: the matrix dimensions
/// and adjacency degree structure that the phase engines consume.
#[derive(Debug, Clone, Serialize)]
pub struct GnnWorkload {
    /// Workload name (dataset name).
    pub name: String,
    /// Vertices `V`.
    pub v: usize,
    /// Input feature width `F`.
    pub f: usize,
    /// Output feature width `G` (the GCN hidden dimension; the paper does not
    /// state it — we default to 16, see `DESIGN.md` §2).
    pub g: usize,
    /// Stored non-zeros per adjacency row (incl. self loops).
    pub degrees: Vec<usize>,
    /// Total stored non-zeros.
    pub nnz: u64,
    /// Mean row degree.
    pub mean_degree: f64,
    /// Maximum row degree.
    pub max_degree: usize,
    /// Attention structure, when this is a GAT-style layer: the evaluation
    /// prepends an SDDMM scoring phase (per-edge `QKᵀ` dot products masked to
    /// the adjacency, plus an edge-wise softmax) before the aggregation.
    pub attention: Option<AttentionSpec>,
    /// Elementwise post-phase (activation / LayerNorm) applied to the layer's
    /// `V×G` output after both matrix phases, when present. `None` keeps the
    /// classic two-phase (plus attention) evaluation bit-identical.
    pub post_op: Option<ElementwiseOp>,
}

/// Default GCN hidden width used throughout the evaluation.
pub const DEFAULT_HIDDEN: usize = 16;

impl GnnWorkload {
    /// Builds the workload for a GCN layer with hidden width `g` over `graph`.
    pub fn from_graph(graph: &Graph, g: usize) -> Self {
        let v = graph.num_vertices();
        let degrees: Vec<usize> = (0..v).map(|i| graph.degree(i)).collect();
        let nnz: u64 = degrees.iter().map(|&d| d as u64).sum();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = if v > 0 { nnz as f64 / v as f64 } else { 0.0 };
        GnnWorkload {
            name: graph.name.clone(),
            v,
            f: graph.feature_dim(),
            g,
            degrees,
            nnz,
            mean_degree,
            max_degree,
            attention: None,
            post_op: None,
        }
    }

    /// Builds the workload for a GCN layer over a generated dataset.
    pub fn gcn_layer(dataset: &Dataset, g: usize) -> Self {
        let mut wl = Self::from_graph(&dataset.graph, g);
        wl.name = dataset.name().to_string();
        wl
    }

    /// Builds the workload for a GAT layer over a generated dataset: a GCN
    /// layer with `heads`-headed attention scoring prepended.
    pub fn gat_layer(dataset: &Dataset, g: usize, heads: usize) -> Self {
        let mut wl = Self::gcn_layer(dataset, g);
        wl.attention = Some(AttentionSpec::new(heads));
        wl
    }

    /// The phases this workload's layer runs under `phase_order`, in execution
    /// order. Attention layers are AC-only: SDDMM score → SpMM weighted
    /// aggregate → GEMM combine.
    pub fn phase_kinds(&self, phase_order: PhaseOrder) -> Vec<PhaseKind> {
        let mut kinds = match (self.attention, phase_order) {
            (Some(_), _) => vec![PhaseKind::Sddmm, PhaseKind::Spmm, PhaseKind::Gemm],
            (None, PhaseOrder::AC) => vec![PhaseKind::Spmm, PhaseKind::Gemm],
            (None, PhaseOrder::CA) => vec![PhaseKind::Gemm, PhaseKind::Spmm],
        };
        if self.post_op.is_some() {
            kinds.push(PhaseKind::Elementwise);
        }
        kinds
    }

    /// Edge scores an attention layer materialises (`heads × nnz`; 0 without
    /// attention).
    pub fn edge_scores(&self) -> u64 {
        self.attention.map_or(0, |a| a.heads as u64 * self.nnz)
    }

    /// Tile-selection context for this workload under a phase order.
    pub fn tile_context(&self, phase_order: PhaseOrder) -> TileContext {
        TileContext::new(phase_order, self.v, self.f, self.g, self.mean_degree, self.max_degree)
    }

    /// Elements of the inter-phase intermediate matrix (`V×F` for AC, `V×G` for
    /// CA).
    pub fn intermediate_elems(&self, phase_order: PhaseOrder) -> u64 {
        match phase_order {
            PhaseOrder::AC => self.v as u64 * self.f as u64,
            PhaseOrder::CA => self.v as u64 * self.g as u64,
        }
    }

    /// Total MACs of the layer (SDDMM scoring when attention is present, plus
    /// Aggregation + Combination), independent of the dataflow.
    pub fn total_macs(&self, phase_order: PhaseOrder) -> u64 {
        let (agg_width, cmb) = match phase_order {
            PhaseOrder::AC => (self.f as u64, self.v as u64 * self.f as u64 * self.g as u64),
            PhaseOrder::CA => (self.g as u64, self.v as u64 * self.f as u64 * self.g as u64),
        };
        let sddmm = self
            .attention
            .map_or(0, |a| a.heads as u64 * self.nnz * a.dot_width(self.f) as u64);
        let post = self.post_op.map_or(0, |op| {
            op.sweeps() * self.v as u64 * self.g as u64
        });
        sddmm + self.nnz * agg_width + cmb + post
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::GraphBuilder;

    fn wl() -> GnnWorkload {
        let g = GraphBuilder::new("t", 6, 10).edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).build();
        GnnWorkload::from_graph(&g, 4)
    }

    #[test]
    fn dimensions_and_degrees() {
        let w = wl();
        assert_eq!(w.v, 6);
        assert_eq!(w.f, 10);
        assert_eq!(w.g, 4);
        // 5 undirected edges → 10 directed + 6 self loops.
        assert_eq!(w.nnz, 16);
        assert_eq!(w.degrees.len(), 6);
        assert_eq!(w.max_degree, 3);
        assert!((w.mean_degree - 16.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn intermediate_size_by_phase_order() {
        let w = wl();
        assert_eq!(w.intermediate_elems(PhaseOrder::AC), 60);
        assert_eq!(w.intermediate_elems(PhaseOrder::CA), 24);
    }

    #[test]
    fn total_macs() {
        let w = wl();
        // AC: agg = nnz*F, cmb = V*F*G.
        assert_eq!(w.total_macs(PhaseOrder::AC), 16 * 10 + 6 * 10 * 4);
        // CA: cmb first (V*F*G), agg over G-wide rows.
        assert_eq!(w.total_macs(PhaseOrder::CA), 16 * 4 + 6 * 10 * 4);
    }

    #[test]
    fn tile_context_uses_phase_order() {
        let w = wl();
        let ac = w.tile_context(PhaseOrder::AC);
        assert_eq!(ac.f_agg, 10);
        let ca = w.tile_context(PhaseOrder::CA);
        assert_eq!(ca.f_agg, 4);
    }

    #[test]
    fn attention_adds_an_sddmm_phase() {
        let mut w = wl();
        assert_eq!(w.phase_kinds(PhaseOrder::AC), vec![PhaseKind::Spmm, PhaseKind::Gemm]);
        assert_eq!(w.phase_kinds(PhaseOrder::CA), vec![PhaseKind::Gemm, PhaseKind::Spmm]);
        assert_eq!(w.edge_scores(), 0);
        let plain_macs = w.total_macs(PhaseOrder::AC);
        w.attention = Some(AttentionSpec::new(2));
        assert_eq!(
            w.phase_kinds(PhaseOrder::AC),
            vec![PhaseKind::Sddmm, PhaseKind::Spmm, PhaseKind::Gemm]
        );
        assert_eq!(w.edge_scores(), 2 * 16);
        // 2 heads × nnz × (F/2) dot width on top of the two-phase MACs.
        assert_eq!(w.total_macs(PhaseOrder::AC), plain_macs + 2 * 16 * 5);
    }

    #[test]
    fn post_op_appends_an_elementwise_phase() {
        let mut w = wl();
        let plain_macs = w.total_macs(PhaseOrder::AC);
        w.post_op = Some(ElementwiseOp::Activation);
        assert_eq!(
            w.phase_kinds(PhaseOrder::AC),
            vec![PhaseKind::Spmm, PhaseKind::Gemm, PhaseKind::Elementwise]
        );
        // One ALU op per output element for an activation sweep.
        assert_eq!(w.total_macs(PhaseOrder::AC), plain_macs + 6 * 4);
        // LayerNorm adds a second (stats) sweep.
        w.post_op = Some(ElementwiseOp::LayerNorm);
        assert_eq!(w.total_macs(PhaseOrder::AC), plain_macs + 2 * 6 * 4);
        assert_eq!(
            w.phase_kinds(PhaseOrder::CA),
            vec![PhaseKind::Gemm, PhaseKind::Spmm, PhaseKind::Elementwise]
        );
    }

    #[test]
    fn attention_spec_clamps() {
        assert_eq!(AttentionSpec::new(0).heads, 1);
        assert_eq!(AttentionSpec::new(8).dot_width(64), 8);
        assert_eq!(AttentionSpec::new(8).dot_width(4), 1);
    }
}
