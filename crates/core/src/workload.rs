//! GNN layer workloads: what the cost model evaluates a dataflow against.

use serde::Serialize;

use omega_dataflow::tiles::TileContext;
use omega_dataflow::PhaseOrder;
use omega_graph::{Dataset, Graph};

/// One GCN-style layer over one (possibly batched) graph: the matrix dimensions
/// and adjacency degree structure that both phase engines consume.
#[derive(Debug, Clone, Serialize)]
pub struct GnnWorkload {
    /// Workload name (dataset name).
    pub name: String,
    /// Vertices `V`.
    pub v: usize,
    /// Input feature width `F`.
    pub f: usize,
    /// Output feature width `G` (the GCN hidden dimension; the paper does not
    /// state it — we default to 16, see `DESIGN.md` §2).
    pub g: usize,
    /// Stored non-zeros per adjacency row (incl. self loops).
    pub degrees: Vec<usize>,
    /// Total stored non-zeros.
    pub nnz: u64,
    /// Mean row degree.
    pub mean_degree: f64,
    /// Maximum row degree.
    pub max_degree: usize,
}

/// Default GCN hidden width used throughout the evaluation.
pub const DEFAULT_HIDDEN: usize = 16;

impl GnnWorkload {
    /// Builds the workload for a GCN layer with hidden width `g` over `graph`.
    pub fn from_graph(graph: &Graph, g: usize) -> Self {
        let v = graph.num_vertices();
        let degrees: Vec<usize> = (0..v).map(|i| graph.degree(i)).collect();
        let nnz: u64 = degrees.iter().map(|&d| d as u64).sum();
        let max_degree = degrees.iter().copied().max().unwrap_or(0);
        let mean_degree = if v > 0 { nnz as f64 / v as f64 } else { 0.0 };
        GnnWorkload {
            name: graph.name.clone(),
            v,
            f: graph.feature_dim(),
            g,
            degrees,
            nnz,
            mean_degree,
            max_degree,
        }
    }

    /// Builds the workload for a GCN layer over a generated dataset.
    pub fn gcn_layer(dataset: &Dataset, g: usize) -> Self {
        let mut wl = Self::from_graph(&dataset.graph, g);
        wl.name = dataset.name().to_string();
        wl
    }

    /// Tile-selection context for this workload under a phase order.
    pub fn tile_context(&self, phase_order: PhaseOrder) -> TileContext {
        TileContext::new(phase_order, self.v, self.f, self.g, self.mean_degree, self.max_degree)
    }

    /// Elements of the inter-phase intermediate matrix (`V×F` for AC, `V×G` for
    /// CA).
    pub fn intermediate_elems(&self, phase_order: PhaseOrder) -> u64 {
        match phase_order {
            PhaseOrder::AC => self.v as u64 * self.f as u64,
            PhaseOrder::CA => self.v as u64 * self.g as u64,
        }
    }

    /// Total MACs of the layer (Aggregation + Combination), independent of the
    /// dataflow.
    pub fn total_macs(&self, phase_order: PhaseOrder) -> u64 {
        let (agg_width, cmb) = match phase_order {
            PhaseOrder::AC => (self.f as u64, self.v as u64 * self.f as u64 * self.g as u64),
            PhaseOrder::CA => (self.g as u64, self.v as u64 * self.f as u64 * self.g as u64),
        };
        self.nnz * agg_width + cmb
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_graph::GraphBuilder;

    fn wl() -> GnnWorkload {
        let g = GraphBuilder::new("t", 6, 10).edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).build();
        GnnWorkload::from_graph(&g, 4)
    }

    #[test]
    fn dimensions_and_degrees() {
        let w = wl();
        assert_eq!(w.v, 6);
        assert_eq!(w.f, 10);
        assert_eq!(w.g, 4);
        // 5 undirected edges → 10 directed + 6 self loops.
        assert_eq!(w.nnz, 16);
        assert_eq!(w.degrees.len(), 6);
        assert_eq!(w.max_degree, 3);
        assert!((w.mean_degree - 16.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn intermediate_size_by_phase_order() {
        let w = wl();
        assert_eq!(w.intermediate_elems(PhaseOrder::AC), 60);
        assert_eq!(w.intermediate_elems(PhaseOrder::CA), 24);
    }

    #[test]
    fn total_macs() {
        let w = wl();
        // AC: agg = nnz*F, cmb = V*F*G.
        assert_eq!(w.total_macs(PhaseOrder::AC), 16 * 10 + 6 * 10 * 4);
        // CA: cmb first (V*F*G), agg over G-wide rows.
        assert_eq!(w.total_macs(PhaseOrder::CA), 16 * 4 + 6 * 10 * 4);
    }

    #[test]
    fn tile_context_uses_phase_order() {
        let w = wl();
        let ac = w.tile_context(PhaseOrder::AC);
        assert_eq!(ac.f_agg, 10);
        let ca = w.tile_context(PhaseOrder::CA);
        assert_eq!(ca.f_agg, 4);
    }
}
