//! The OMEGA evaluation entry point: one workload × one dataflow × one machine.

use omega_accel::engine::{
    simulate_gemm, simulate_spmm, ChunkSide, ChunkSpec, EngineOptions, GemmDims, OperandClasses,
    SpmmWorkload,
};
use omega_accel::{AccelConfig, AccessCounters, EnergyModel};
use omega_dataflow::{validate, Dim, GnnDataflow, InterPhase, PhaseOrder, ValidationError};

use crate::cost::{CostReport, EnergyBreakdown, IntermediateCost};
use crate::pipeline::{pipeline_runtime, resample_durations};
use crate::GnnWorkload;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The dataflow violates Table II legality.
    Invalid(ValidationError),
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Invalid(e) => write!(f, "illegal dataflow: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValidationError> for EvalError {
    fn from(e: ValidationError) -> Self {
        EvalError::Invalid(e)
    }
}

/// Evaluates `dataflow` running `workload` on the accelerator `cfg`, producing
/// runtime, buffering, and energy per the inter-phase cost model (Table III).
pub fn evaluate(
    workload: &GnnWorkload,
    dataflow: &GnnDataflow,
    cfg: &AccelConfig,
) -> Result<CostReport, EvalError> {
    validate(dataflow)?;
    let sp_optimized = dataflow.is_sp_optimized();
    // A Sequential dataflow's loop orders may *happen* to be pipeline-compatible,
    // but nothing is pipelined — report no granularity/Pel for it.
    let granularity = match dataflow.inter {
        InterPhase::Sequential => None,
        _ => dataflow.granularity(),
    };

    let pel = granularity.and(intermediate_pel(workload, dataflow));

    // The dense width Aggregation streams per neighbour: F under AC, G under CA.
    let agg_width = match dataflow.phase_order {
        PhaseOrder::AC => workload.f,
        PhaseOrder::CA => workload.g,
    };
    let gemm_dims = GemmDims { v: workload.v, f: workload.f, g: workload.g };
    let spmm_wl = SpmmWorkload { degrees: &workload.degrees, feature_width: agg_width };
    let (agg_classes, cmb_classes) = match dataflow.phase_order {
        PhaseOrder::AC => (OperandClasses::aggregation_ac(), OperandClasses::combination_ac()),
        PhaseOrder::CA => (OperandClasses::aggregation_ca(), OperandClasses::combination_ca()),
    };

    let energy_model = EnergyModel { gb_bank_bytes: cfg.gb_bank_bytes, ..EnergyModel::paper_default() };

    let (agg, cmb, total_cycles, buffering, partition_bytes) = match dataflow.inter {
        InterPhase::Sequential => {
            let bw = cfg.full_bandwidth();
            let agg = simulate_spmm(&spmm_wl, &dataflow.agg, cfg, &agg_classes, &EngineOptions::plain(bw));
            let cmb = simulate_gemm(gemm_dims, &dataflow.cmb, cfg, &cmb_classes, &EngineOptions::plain(bw));
            let total = agg.cycles + cmb.cycles;
            let buffering = workload.intermediate_elems(dataflow.phase_order);
            (agg, cmb, total, buffering, None)
        }
        InterPhase::SequentialPipeline => {
            let bw = cfg.full_bandwidth();
            let mut producer_opts = EngineOptions::plain(bw);
            let mut consumer_opts = EngineOptions::plain(bw);
            if sp_optimized {
                producer_opts.output_stays_local = true;
                consumer_opts.input_resident = true;
            }
            let (agg, cmb) = match dataflow.phase_order {
                PhaseOrder::AC => (
                    simulate_spmm(&spmm_wl, &dataflow.agg, cfg, &agg_classes, &producer_opts),
                    simulate_gemm(gemm_dims, &dataflow.cmb, cfg, &cmb_classes, &consumer_opts),
                ),
                PhaseOrder::CA => (
                    simulate_spmm(&spmm_wl, &dataflow.agg, cfg, &agg_classes, &consumer_opts),
                    simulate_gemm(gemm_dims, &dataflow.cmb, cfg, &cmb_classes, &producer_opts),
                ),
            };
            let total = agg.cycles + cmb.cycles;
            // Table III: SP-Generic stages Pel elements through the GB;
            // SP-Optimized keeps the intermediate in the RFs (zero buffering).
            let buffering = if sp_optimized { 0 } else { pel.unwrap_or(0) };
            (agg, cmb, total, buffering, None)
        }
        InterPhase::ParallelPipeline => {
            let pel_elems = pel.expect("validated PP dataflow has a granularity");
            // NoC bandwidth is shared between the concurrently-running
            // partitions in proportion to their PE allocation (Section V-C3).
            let agg_bw = cfg.bandwidth_fraction(dataflow.agg.pe_footprint());
            let cmb_bw = cfg.bandwidth_fraction(dataflow.cmb.pe_footprint());
            let mut agg_opts = EngineOptions::plain(agg_bw);
            let mut cmb_opts = EngineOptions::plain(cmb_bw);
            let (producer_is_agg, agg_side, cmb_side) = match dataflow.phase_order {
                PhaseOrder::AC => (true, ChunkSide::Produce, ChunkSide::Consume),
                PhaseOrder::CA => (false, ChunkSide::Consume, ChunkSide::Produce),
            };
            agg_opts.chunk = Some(ChunkSpec { side: agg_side, pel: chunk_pel(agg_side, pel_elems, workload, agg_width) });
            cmb_opts.chunk = Some(ChunkSpec { side: cmb_side, pel: pel_elems });
            let agg = simulate_spmm(&spmm_wl, &dataflow.agg, cfg, &agg_classes, &agg_opts);
            let cmb = simulate_gemm(gemm_dims, &dataflow.cmb, cfg, &cmb_classes, &cmb_opts);

            let (producer, consumer) = if producer_is_agg { (&agg, &cmb) } else { (&cmb, &agg) };
            let p_dur = producer.chunk_durations();
            let c_dur = consumer.chunk_durations();
            let k = p_dur.len().max(1);
            let c_dur = if c_dur.len() == k { c_dur } else { resample_durations(&c_dur, k) };
            let p_dur = if p_dur.is_empty() { vec![0] } else { p_dur };
            let total = pipeline_runtime(&p_dur, &c_dur);
            // Ping-pong buffering: 2 × Pel (Table III).
            let buffering = 2 * pel_elems;
            let partition = Some((buffering as usize) * cfg.word_bytes);
            (agg, cmb, total, buffering, partition)
        }
    };

    let mut counters = AccessCounters::default();
    counters.merge(&agg.counters);
    counters.merge(&cmb.counters);
    // Fig. 6 / Section IV-A: Seq stages the whole intermediate on chip; whatever
    // does not fit the GB moves through DRAM instead. The intermediate is the
    // resident working set (the other operands stream through small staging
    // buffers), so the overflow is charged against the full GB capacity.
    let intermediate_cost = match partition_bytes {
        Some(cap) => IntermediateCost::Partition(cap),
        None => {
            let dram_fraction = if dataflow.inter == InterPhase::Sequential {
                let int_bytes = buffering as f64 * cfg.word_bytes as f64;
                ((int_bytes - cfg.gb_bytes as f64) / int_bytes.max(1.0)).clamp(0.0, 1.0)
            } else {
                0.0
            };
            IntermediateCost::GlobalBuffer { dram_fraction }
        }
    };
    let energy = EnergyBreakdown::from_counters_with(&counters, &energy_model, intermediate_cost);

    Ok(CostReport {
        dataflow: *dataflow,
        total_cycles,
        agg,
        cmb,
        counters,
        intermediate_buffer_elems: buffering,
        pel,
        granularity,
        sp_optimized,
        energy,
    })
}

/// The `Pel` implied by a pipelined dataflow's granularity for `workload`:
/// intermediate-matrix geometry per Section IV-D, with footnote 1's "max tile
/// across the two phases" rule. `None` when the loop-order pair cannot
/// pipeline. Shared by [`evaluate`] and the chain lowering of
/// [`crate::models::to_chain`] so both agree on chunk sizes.
pub(crate) fn intermediate_pel(workload: &GnnWorkload, dataflow: &GnnDataflow) -> Option<u64> {
    let granularity = dataflow.granularity()?;
    let (rows, cols, t_row_max, t_col_max) = match dataflow.phase_order {
        PhaseOrder::AC => (
            workload.v,
            workload.f,
            dataflow.agg.tile_of(Dim::V).max(dataflow.cmb.tile_of(Dim::V)),
            dataflow.agg.tile_of(Dim::F).max(dataflow.cmb.tile_of(Dim::F)),
        ),
        PhaseOrder::CA => (
            workload.v,
            workload.g,
            dataflow.cmb.tile_of(Dim::V).max(dataflow.agg.tile_of(Dim::N)),
            dataflow.cmb.tile_of(Dim::G).max(dataflow.agg.tile_of(Dim::F)),
        ),
    };
    Some(granularity.pel(rows, cols, t_row_max, t_col_max) as u64)
}

/// Rescales a `Pel` measured in intermediate elements onto the SpMM engine's
/// edge-visit progress axis (`pel · visits / elems`, ≥ 1). Shared by the PP
/// path here and [`crate::multiphase`]'s consume-side chunking so the two stay
/// bit-identical — the chain lowering's cycle fidelity depends on it.
pub(crate) fn scale_elems_to_visits(pel_elems: u64, total_elems: u64, total_visits: u64) -> u64 {
    if total_elems == 0 {
        return pel_elems.max(1);
    }
    ((pel_elems as u128 * total_visits as u128) / total_elems as u128).max(1) as u64
}

/// The SpMM engine tracks *consumption* progress in edge-visit units rather
/// than intermediate elements (a CA consumer gathers arbitrary rows); convert
/// `Pel` accordingly so chunk counts roughly align before resampling.
fn chunk_pel(side: ChunkSide, pel_elems: u64, wl: &GnnWorkload, agg_width: usize) -> u64 {
    match side {
        ChunkSide::Produce => pel_elems,
        ChunkSide::Consume => {
            scale_elems_to_visits(pel_elems, (wl.v as u64) * agg_width as u64, wl.nnz * agg_width as u64)
        }
    }
}

/// Convenience: evaluate several dataflows, returning them with their reports.
pub fn evaluate_many<'a>(
    workload: &GnnWorkload,
    dataflows: impl IntoIterator<Item = &'a GnnDataflow>,
    cfg: &AccelConfig,
) -> Vec<Result<CostReport, EvalError>> {
    dataflows.into_iter().map(|df| evaluate(workload, df, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_dataflow::presets::Preset;
    use omega_graph::DatasetSpec;

    fn small_workload() -> GnnWorkload {
        let d = DatasetSpec::mutag().generate(1);
        GnnWorkload::gcn_layer(&d, 16)
    }

    fn eval_preset(name: &str, wl: &GnnWorkload, cfg: &AccelConfig) -> CostReport {
        let preset = Preset::by_name(name).unwrap();
        let ctx = wl.tile_context(preset.pattern.phase_order);
        let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        };
        let df = preset.concretize(&ctx, a, c);
        evaluate(wl, &df, cfg).unwrap()
    }

    #[test]
    fn all_presets_evaluate_on_mutag() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        for p in Preset::all() {
            let r = eval_preset(p.name, &wl, &cfg);
            assert!(r.total_cycles > 0, "{}", p.name);
            assert!(r.energy.total_pj() > 0.0, "{}", p.name);
            assert_eq!(r.agg.macs, wl.nnz * wl.f as u64, "{}", p.name);
            assert_eq!(r.cmb.macs, (wl.v * wl.f * wl.g) as u64, "{}", p.name);
        }
    }

    #[test]
    fn seq_runtime_is_sum_of_phases() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let r = eval_preset("Seq1", &wl, &cfg);
        assert_eq!(r.total_cycles, r.agg.cycles + r.cmb.cycles);
        // Table III: Seq buffers the whole V×F intermediate.
        assert_eq!(r.intermediate_buffer_elems, (wl.v * wl.f) as u64);
        assert!(!r.sp_optimized);
        assert!(r.granularity.is_none());
    }

    #[test]
    fn sp_optimized_has_zero_intermediate_buffering_and_traffic() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let r = eval_preset("SP2", &wl, &cfg);
        assert!(r.sp_optimized);
        assert_eq!(r.intermediate_buffer_elems, 0);
        use omega_accel::OperandClass;
        assert_eq!(r.counters.gb_of(OperandClass::Intermediate), 0);
        assert_eq!(r.total_cycles, r.agg.cycles + r.cmb.cycles);
    }

    #[test]
    fn sp_beats_seq_on_intermediate_energy() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let seq = eval_preset("Seq1", &wl, &cfg);
        let sp = eval_preset("SP2", &wl, &cfg);
        assert!(sp.energy.intermediate_pj < seq.energy.intermediate_pj);
    }

    #[test]
    fn pp_buffers_two_pel_and_uses_pipeline_runtime() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let r = eval_preset("PP3", &wl, &cfg);
        let pel = r.pel.unwrap();
        assert_eq!(r.intermediate_buffer_elems, 2 * pel);
        // Pipelining overlaps: total < sum of phases, ≥ the slower phase.
        assert!(r.total_cycles <= r.agg.cycles + r.cmb.cycles);
        assert!(r.total_cycles >= r.agg.cycles.max(r.cmb.cycles));
        assert!(r.granularity.is_some());
    }

    #[test]
    fn pp_intermediate_energy_discounted_by_partition() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let seq = eval_preset("Seq1", &wl, &cfg);
        let pp = eval_preset("PP1", &wl, &cfg);
        // Same order of intermediate accesses but the PP partition is small →
        // cheaper per access.
        let seq_rate = seq.energy.intermediate_pj
            / seq.counters.gb_of(omega_accel::OperandClass::Intermediate).max(1) as f64;
        let pp_rate = pp.energy.intermediate_pj
            / pp.counters.gb_of(omega_accel::OperandClass::Intermediate).max(1) as f64;
        assert!(pp_rate < seq_rate, "pp {pp_rate} vs seq {seq_rate}");
    }

    #[test]
    fn illegal_dataflow_is_rejected() {
        use omega_dataflow::{IntraTiling, LoopOrder, Phase};
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::N, Dim::V, Dim::F]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        let df = GnnDataflow {
            inter: InterPhase::ParallelPipeline,
            phase_order: PhaseOrder::AC,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [1, 2, 2]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [2, 2, 1]),
        };
        let err = evaluate(&wl, &df, &cfg).unwrap_err();
        assert!(matches!(err, EvalError::Invalid(_)));
        assert!(err.to_string().contains("NVF"));
    }

    #[test]
    fn ca_phase_order_evaluates() {
        use omega_dataflow::{IntraTiling, LoopOrder, Phase};
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        // Seq CA with simple tilings.
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        let df = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: PhaseOrder::CA,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [16, 16, 1]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [32, 16, 1]),
        };
        let r = evaluate(&wl, &df, &cfg).unwrap();
        // CA aggregation streams G-wide rows.
        assert_eq!(r.agg.macs, wl.nnz * wl.g as u64);
        // CA intermediate is V×G.
        assert_eq!(r.intermediate_buffer_elems, (wl.v * wl.g) as u64);
    }

    #[test]
    fn evaluate_many_collects() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let ctx = wl.tile_context(PhaseOrder::AC);
        let dfs: Vec<GnnDataflow> = ["Seq1", "SP1"]
            .iter()
            .map(|n| Preset::by_name(n).unwrap().concretize(&ctx, 512, 512))
            .collect();
        let results = evaluate_many(&wl, dfs.iter(), &cfg);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
    }
}
