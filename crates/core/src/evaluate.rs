//! The OMEGA evaluation entry point: one workload × one dataflow × one machine.
//!
//! The evaluation is **phase-factored**: [`evaluate`] first *plans* the two
//! phase simulations (tiling, operand classes, bandwidth share, residency
//! flags, chunk spec — everything a phase engine's result depends on besides
//! the workload itself), then runs them, then *composes* the totals per the
//! inter-phase cost model (Table III). The factoring is what the exhaustive
//! explorer of [`crate::dse`] exploits: for `Sequential` and
//! `SequentialPipeline` dataflows the two phase simulations are completely
//! independent of each other, so a [`PhaseSimCache`] keyed by the phase plan
//! lets a 6,656-candidate sweep simulate each *unique* phase configuration
//! once and recompose the rest arithmetically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use omega_accel::engine::{
    simulate_elementwise, simulate_gemm_prepared, simulate_sddmm_prepared, simulate_spmm_prepared,
    CapacityBudget, ChunkSide, ChunkSpec, ElementwiseWorkload, EngineOptions, GemmDims,
    OperandClasses, PreparedGemm, PreparedSpmm,
};
use omega_accel::{
    AccelConfig, AccessCounters, BandwidthShare, EnergyModel, OperandClass, PhaseStats,
};
use omega_dataflow::{
    validate, validate_elementwise, validate_sddmm, Dim, GnnDataflow, Granularity, InterPhase,
    IntraTiling, PhaseOrder, ValidationError,
};

use crate::cost::{CostReport, EnergyBreakdown, IntermediateCost};
use crate::dse::lock_recover;
use crate::pipeline::{pipeline_runtime, resample_durations};
use crate::GnnWorkload;

/// Evaluation failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The dataflow violates Table II legality (or, for attention workloads,
    /// the SDDMM loop-order legality of `omega_dataflow::validate_sddmm`).
    Invalid(ValidationError),
    /// An attention (GAT) workload was evaluated under the CA phase order:
    /// the scores are computed on the phase's input features and consumed by
    /// the Aggregation, so only AC is legal.
    AttentionRequiresAc,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::Invalid(e) => write!(f, "illegal dataflow: {e}"),
            EvalError::AttentionRequiresAc => {
                write!(f, "attention (GAT) layers are AC-only: SDDMM score -> aggregate -> combine")
            }
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ValidationError> for EvalError {
    fn from(e: ValidationError) -> Self {
        EvalError::Invalid(e)
    }
}

/// Evaluates `dataflow` running `workload` on the accelerator `cfg`, producing
/// runtime, buffering, and energy per the inter-phase cost model (Table III).
///
/// One-shot convenience over [`PreparedEval`]: callers evaluating many
/// dataflows of the *same* workload should prepare once and reuse it (the DSE
/// engines do), which hoists the degree preprocessing out of every simulation.
pub fn evaluate(
    workload: &GnnWorkload,
    dataflow: &GnnDataflow,
    cfg: &AccelConfig,
) -> Result<CostReport, EvalError> {
    PreparedEval::new(workload, cfg).evaluate(dataflow)
}

/// One phase simulation, fully specified modulo the workload held by the
/// surrounding [`PreparedEval`]. Doubles as the [`PhaseSimCache`] key: two
/// equal keys denote bit-identical simulations (the engines are deterministic),
/// so every result-affecting knob — tiling, operand classes, bandwidth share,
/// residency flags, chunk spec — participates in `Eq`/`Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum PhaseKey {
    /// Aggregation: SpMM over the prepared degrees, `width` dense columns.
    Spmm { width: usize, tiling: IntraTiling, classes: OperandClasses, opts: EngineOptions },
    /// Combination: dense GEMM.
    Gemm { dims: GemmDims, tiling: IntraTiling, classes: OperandClasses, opts: EngineOptions },
    /// Attention scoring: SDDMM over the prepared degrees (`heads` per-edge
    /// dot products of `dot_width` elements, plus the softmax pass).
    Sddmm {
        dot_width: usize,
        heads: usize,
        tiling: IntraTiling,
        classes: OperandClasses,
        opts: EngineOptions,
    },
    /// Elementwise post-phase (activation / LayerNorm) over the layer output,
    /// run on the final matrix phase's tiling.
    Elementwise {
        wl: ElementwiseWorkload,
        tiling: IntraTiling,
        classes: OperandClasses,
        opts: EngineOptions,
    },
}

/// The planned evaluation of one dataflow: every phase simulation plus the
/// composition facts that do not depend on simulation results.
struct EvalPlan {
    sp_optimized: bool,
    granularity: Option<Granularity>,
    pel: Option<u64>,
    /// The attention scoring phase, when the workload has one. It runs
    /// sequentially before the aggregation/combination pair on the full
    /// array, sharing the Aggregation tiling.
    sddmm: Option<PhaseKey>,
    agg: PhaseKey,
    cmb: PhaseKey,
    /// The elementwise post-phase, when the workload requests one. It runs
    /// sequentially after both matrix phases on the full array, reusing the
    /// final phase's tiling.
    post: Option<PhaseKey>,
}

/// How a DSE-driven evaluation ended (see [`PreparedEval::evaluate_dse`]).
pub(crate) enum DseEval {
    /// The dataflow evaluated; the report's phase timelines are intact.
    Report(Box<CostReport>),
    /// The admissible cycle lower bound already exceeds the pruning threshold:
    /// the candidate cannot enter the ranked result, simulation skipped.
    Pruned,
    /// The dataflow failed Table II validation.
    Invalid,
}

/// A workload's evaluation context, prepared once and shared across many
/// dataflow evaluations: the hoisted SpMM degree structures, the GEMM
/// dimensions, and the energy model.
pub struct PreparedEval<'a> {
    workload: &'a GnnWorkload,
    cfg: &'a AccelConfig,
    spmm: PreparedSpmm<'a>,
    gemm: PreparedGemm,
    energy_model: EnergyModel,
}

impl<'a> PreparedEval<'a> {
    /// Prepares `workload` for repeated evaluation on `cfg`.
    pub fn new(workload: &'a GnnWorkload, cfg: &'a AccelConfig) -> Self {
        PreparedEval {
            workload,
            cfg,
            spmm: PreparedSpmm::new(&workload.degrees),
            gemm: PreparedGemm::new(GemmDims { v: workload.v, f: workload.f, g: workload.g }),
            energy_model: EnergyModel {
                gb_bank_bytes: cfg.gb_bank_bytes,
                ..EnergyModel::paper_default()
            },
        }
    }

    /// Evaluates one dataflow — bit-identical to [`evaluate`].
    pub fn evaluate(&self, dataflow: &GnnDataflow) -> Result<CostReport, EvalError> {
        let plan = self.plan(dataflow)?;
        Ok(self.run_plan(dataflow, &plan, None))
    }

    /// [`Self::evaluate`] through a shared [`PhaseSimCache`]: bit-identical
    /// results, with repeated phase configurations simulated only once —
    /// Sequential/SP dataflows that share a phase tiling share its simulation.
    pub fn evaluate_with_cache(
        &self,
        dataflow: &GnnDataflow,
        cache: &PhaseSimCache,
    ) -> Result<CostReport, EvalError> {
        let plan = self.plan(dataflow)?;
        Ok(self.run_plan(dataflow, &plan, Some(cache)))
    }

    /// The DSE hot path: evaluate with an optional shared phase-simulation
    /// cache and an optional pruning threshold (total-cycle budget — candidates
    /// whose admissible lower bound exceeds it skip simulation entirely).
    pub(crate) fn evaluate_dse(
        &self,
        dataflow: &GnnDataflow,
        cache: Option<&PhaseSimCache>,
        prune_above: Option<f64>,
    ) -> DseEval {
        let Ok(plan) = self.plan(dataflow) else { return DseEval::Invalid };
        if let Some(threshold) = prune_above {
            if self.lower_bound(&plan, dataflow.inter) as f64 > threshold {
                return DseEval::Pruned;
            }
        }
        DseEval::Report(Box::new(self.run_plan(dataflow, &plan, cache)))
    }

    /// The Pareto-mode DSE hot path: plan the dataflow, hand its per-objective
    /// admissible bound vector (`[cycles, energy pJ, buffer-peak bytes]`) to
    /// `prune_if`, and simulate only when the caller cannot rule it out. A
    /// `true` verdict is sound exactly when the caller only prunes vectors
    /// some known-reachable point strictly beats on **all** axes: the real
    /// report is component-wise ≥ the bound, so it would be dominated too.
    pub(crate) fn evaluate_dse_pareto(
        &self,
        dataflow: &GnnDataflow,
        cache: Option<&PhaseSimCache>,
        prune_if: &dyn Fn([f64; 3]) -> bool,
    ) -> DseEval {
        let Ok(plan) = self.plan(dataflow) else { return DseEval::Invalid };
        if prune_if(self.bound_vector(&plan, dataflow)) {
            return DseEval::Pruned;
        }
        DseEval::Report(Box::new(self.run_plan(dataflow, &plan, cache)))
    }

    /// Simulates every planned phase (through `cache` when given, directly
    /// otherwise) and composes the totals — the shared tail of all evaluation
    /// entry points.
    fn run_plan(
        &self,
        dataflow: &GnnDataflow,
        plan: &EvalPlan,
        cache: Option<&PhaseSimCache>,
    ) -> CostReport {
        let (sddmm, agg, cmb, post) = match cache {
            Some(cache) => (
                plan.sddmm.as_ref().map(|k| cache.stats(self, k).as_ref().clone()),
                cache.stats(self, &plan.agg).as_ref().clone(),
                cache.stats(self, &plan.cmb).as_ref().clone(),
                plan.post.as_ref().map(|k| cache.stats(self, k).as_ref().clone()),
            ),
            None => (
                plan.sddmm.as_ref().map(|k| self.simulate(k)),
                self.simulate(&plan.agg),
                self.simulate(&plan.cmb),
                plan.post.as_ref().map(|k| self.simulate(k)),
            ),
        };
        self.compose(dataflow, plan, sddmm, agg, cmb, post)
    }

    /// Plans the two phase simulations of `dataflow` — the per-phase engine
    /// options exactly as the inter-phase cost model prescribes them.
    fn plan(&self, dataflow: &GnnDataflow) -> Result<EvalPlan, EvalError> {
        validate(dataflow)?;
        let workload = self.workload;
        let cfg = self.cfg;
        let sp_optimized = dataflow.is_sp_optimized();
        // Capacity enforcement is opt-in (`ModelKnobs::enforce_capacity`): the
        // engines always *report* their working-set peaks, but only a finite
        // budget makes overflowing tiles pay the spill recipe. `UNBOUNDED`
        // keeps every plan bit-identical to the unconstrained paper model.
        let capacity = if cfg.knobs.enforce_capacity {
            CapacityBudget { rf_bytes_per_pe: cfg.rf_bytes_per_pe, gb_bytes: cfg.gb_bytes }
        } else {
            CapacityBudget::UNBOUNDED
        };

        // Attention (GAT) workloads prepend an SDDMM scoring phase: scores are
        // computed on the input features (AC only) with the layer's
        // Aggregation tiling, which must satisfy the SDDMM loop-order rule.
        let sddmm = match workload.attention {
            None => None,
            Some(att) => {
                if dataflow.phase_order != PhaseOrder::AC {
                    return Err(EvalError::AttentionRequiresAc);
                }
                validate_sddmm(&dataflow.agg)?;
                let mut opts = EngineOptions::plain(cfg.full_bandwidth());
                opts.capacity = capacity;
                opts.reference_walk = cfg.knobs.reference_walk;
                if sp_optimized {
                    // SP-Optimized attention: both phases share the tiling, so
                    // the scores never leave the PE register files — the
                    // softmax runs locally and the aggregation gathers the
                    // resident values (its `scores_resident` flag below).
                    opts.output_stays_local = true;
                }
                Some(PhaseKey::Sddmm {
                    dot_width: att.dot_width(workload.f),
                    heads: att.heads,
                    tiling: dataflow.agg,
                    classes: OperandClasses::sddmm(),
                    opts,
                })
            }
        };
        // A Sequential dataflow's loop orders may *happen* to be
        // pipeline-compatible, but nothing is pipelined — report no
        // granularity/Pel for it.
        let granularity = match dataflow.inter {
            InterPhase::Sequential => None,
            _ => dataflow.granularity(),
        };
        let pel = granularity.and(intermediate_pel(workload, dataflow));

        // The dense width Aggregation streams per neighbour: F under AC, G under CA.
        let agg_width = match dataflow.phase_order {
            PhaseOrder::AC => workload.f,
            PhaseOrder::CA => workload.g,
        };
        let (agg_classes, cmb_classes) = match (workload.attention, dataflow.phase_order) {
            // GAT aggregation gathers SDDMM scores as its per-edge values.
            (Some(_), _) => (OperandClasses::aggregation_gat(), OperandClasses::combination_ac()),
            (None, PhaseOrder::AC) => {
                (OperandClasses::aggregation_ac(), OperandClasses::combination_ac())
            }
            (None, PhaseOrder::CA) => {
                (OperandClasses::aggregation_ca(), OperandClasses::combination_ca())
            }
        };

        let (agg_opts, cmb_opts) = match dataflow.inter {
            InterPhase::Sequential => {
                let bw = cfg.full_bandwidth();
                (EngineOptions::plain(bw), EngineOptions::plain(bw))
            }
            InterPhase::SequentialPipeline => {
                let bw = cfg.full_bandwidth();
                let mut producer_opts = EngineOptions::plain(bw);
                let mut consumer_opts = EngineOptions::plain(bw);
                if sp_optimized {
                    producer_opts.output_stays_local = true;
                    consumer_opts.input_resident = true;
                }
                match dataflow.phase_order {
                    PhaseOrder::AC => (producer_opts, consumer_opts),
                    PhaseOrder::CA => (consumer_opts, producer_opts),
                }
            }
            InterPhase::ParallelPipeline => {
                let pel_elems = pel.expect("validated PP dataflow has a granularity");
                // NoC bandwidth is shared between the concurrently-running
                // partitions in proportion to their PE allocation (Section V-C3).
                let agg_bw = cfg.bandwidth_fraction(dataflow.agg.pe_footprint());
                let cmb_bw = cfg.bandwidth_fraction(dataflow.cmb.pe_footprint());
                let mut agg_opts = EngineOptions::plain(agg_bw);
                let mut cmb_opts = EngineOptions::plain(cmb_bw);
                let (agg_side, cmb_side) = match dataflow.phase_order {
                    PhaseOrder::AC => (ChunkSide::Produce, ChunkSide::Consume),
                    PhaseOrder::CA => (ChunkSide::Consume, ChunkSide::Produce),
                };
                agg_opts.chunk = Some(ChunkSpec {
                    side: agg_side,
                    pel: chunk_pel(agg_side, pel_elems, workload, agg_width),
                });
                cmb_opts.chunk = Some(ChunkSpec { side: cmb_side, pel: pel_elems });
                (agg_opts, cmb_opts)
            }
        };

        let (mut agg_opts, mut cmb_opts) = (agg_opts, cmb_opts);
        agg_opts.capacity = capacity;
        cmb_opts.capacity = capacity;
        // The per-edge oracle only exists for the sparse walks; GEMM has no
        // reference path, so its options stay untouched (and cache-stable).
        agg_opts.reference_walk = cfg.knobs.reference_walk;
        if sddmm.is_some() && sp_optimized {
            // The SDDMM producer kept the scores local (see above): the
            // aggregation reads them from the RFs, fetching only the CSR
            // structure.
            agg_opts.scores_resident = true;
        }

        // The elementwise post-phase streams the finished `V×G` output through
        // the array once more (twice for LayerNorm), after both matrix phases:
        // it reuses the *final* phase's tiling — the output is already laid out
        // for it — at full bandwidth (nothing else runs concurrently).
        let post = match workload.post_op {
            None => None,
            Some(op) => {
                let tiling = match dataflow.phase_order {
                    PhaseOrder::AC => dataflow.cmb,
                    PhaseOrder::CA => dataflow.agg,
                };
                validate_elementwise(&tiling)?;
                let mut opts = EngineOptions::plain(cfg.full_bandwidth());
                opts.capacity = capacity;
                Some(PhaseKey::Elementwise {
                    wl: ElementwiseWorkload { rows: workload.v, width: workload.g, op },
                    tiling,
                    classes: OperandClasses::elementwise_on(OperandClass::Output),
                    opts,
                })
            }
        };

        Ok(EvalPlan {
            sp_optimized,
            granularity,
            pel,
            sddmm,
            agg: PhaseKey::Spmm {
                width: agg_width,
                tiling: dataflow.agg,
                classes: agg_classes,
                opts: agg_opts,
            },
            cmb: PhaseKey::Gemm {
                dims: self.gemm.dims(),
                tiling: dataflow.cmb,
                classes: cmb_classes,
                opts: cmb_opts,
            },
            post,
        })
    }

    /// Runs one planned phase simulation.
    fn simulate(&self, key: &PhaseKey) -> PhaseStats {
        match key {
            PhaseKey::Spmm { width, tiling, classes, opts } => {
                simulate_spmm_prepared(&self.spmm, *width, tiling, self.cfg, classes, opts)
            }
            PhaseKey::Gemm { tiling, classes, opts, .. } => {
                // The key's `dims` equal `self.gemm.dims()` by construction
                // (`plan` copies them from the preparation); the prepared
                // variant is what the simulation consumes.
                simulate_gemm_prepared(&self.gemm, tiling, self.cfg, classes, opts)
            }
            PhaseKey::Sddmm { dot_width, heads, tiling, classes, opts } => {
                simulate_sddmm_prepared(
                    &self.spmm, *dot_width, *heads, tiling, self.cfg, classes, opts,
                )
            }
            PhaseKey::Elementwise { wl, tiling, classes, opts } => {
                simulate_elementwise(wl, tiling, self.cfg, classes, opts)
            }
        }
    }

    /// Composes the phase results into the inter-phase cost report (Table III;
    /// an attention workload's SDDMM phase adds sequentially up front).
    fn compose(
        &self,
        dataflow: &GnnDataflow,
        plan: &EvalPlan,
        sddmm: Option<PhaseStats>,
        agg: PhaseStats,
        cmb: PhaseStats,
        post: Option<PhaseStats>,
    ) -> CostReport {
        let workload = self.workload;
        let cfg = self.cfg;
        let (total_cycles, buffering, partition_bytes) = match dataflow.inter {
            InterPhase::Sequential => (
                agg.cycles + cmb.cycles,
                workload.intermediate_elems(dataflow.phase_order),
                None,
            ),
            InterPhase::SequentialPipeline => {
                // Table III: SP-Generic stages Pel elements through the GB;
                // SP-Optimized keeps the intermediate in the RFs (zero buffering).
                let buffering = if plan.sp_optimized { 0 } else { plan.pel.unwrap_or(0) };
                (agg.cycles + cmb.cycles, buffering, None)
            }
            InterPhase::ParallelPipeline => {
                let pel_elems = plan.pel.expect("validated PP dataflow has a granularity");
                let producer_is_agg = dataflow.phase_order == PhaseOrder::AC;
                let (producer, consumer) = if producer_is_agg { (&agg, &cmb) } else { (&cmb, &agg) };
                let p_dur = producer.chunk_durations();
                let c_dur = consumer.chunk_durations();
                let k = p_dur.len().max(1);
                let c_dur = if c_dur.len() == k { c_dur } else { resample_durations(&c_dur, k) };
                let p_dur = if p_dur.is_empty() { vec![0] } else { p_dur };
                let total = pipeline_runtime(&p_dur, &c_dur);
                // Ping-pong buffering: 2 × Pel (Table III).
                let buffering = 2 * pel_elems;
                (total, buffering, Some((buffering as usize) * cfg.word_bytes))
            }
        };

        // The scoring phase is a sequential prefix: every downstream phase
        // needs the full normalised score array (the softmax is a global
        // per-row reduction), so its cycles add on top of the composition.
        // Symmetrically, the elementwise post-phase is a sequential suffix: it
        // needs the complete layer output (LayerNorm's stats sweep reads whole
        // rows), so its cycles add at the end.
        let total_cycles = total_cycles
            + sddmm.as_ref().map_or(0, |s| s.cycles)
            + post.as_ref().map_or(0, |s| s.cycles);

        let mut counters = AccessCounters::default();
        if let Some(s) = &sddmm {
            counters.merge(&s.counters);
        }
        counters.merge(&agg.counters);
        counters.merge(&cmb.counters);
        if let Some(s) = &post {
            counters.merge(&s.counters);
        }
        // Fig. 6 / Section IV-A: Seq stages the whole intermediate on chip;
        // whatever does not fit the GB moves through DRAM instead. The
        // intermediate is the resident working set (the other operands stream
        // through small staging buffers), so the overflow is charged against
        // the full GB capacity.
        let intermediate_cost = match partition_bytes {
            Some(cap) => IntermediateCost::Partition(cap),
            None => {
                let dram_fraction = if dataflow.inter == InterPhase::Sequential {
                    let int_bytes = buffering as f64 * cfg.word_bytes as f64;
                    ((int_bytes - cfg.gb_bytes as f64) / int_bytes.max(1.0)).clamp(0.0, 1.0)
                } else {
                    0.0
                };
                IntermediateCost::GlobalBuffer { dram_fraction }
            }
        };
        let energy =
            EnergyBreakdown::from_counters_with(&counters, &self.energy_model, intermediate_cost);

        // On-chip working-set peak, composed the way the runtime is: the two
        // matrix phases share the machine sequentially under Seq/SP (max of
        // their peaks) but coexist under PP (sum); the SDDMM prefix and the
        // elementwise suffix run alone on the full array (max). The Table III
        // intermediate buffering coexists with whichever phase is running, so
        // its bytes add on top.
        let phase_peak = |s: &PhaseStats| -> u64 {
            s.gb_peak_bytes.saturating_add(s.rf_peak_bytes.saturating_mul(s.pe_footprint as u64))
        };
        let matrix_pair = match dataflow.inter {
            InterPhase::ParallelPipeline => phase_peak(&agg).saturating_add(phase_peak(&cmb)),
            _ => phase_peak(&agg).max(phase_peak(&cmb)),
        };
        let buffer_peak_bytes = matrix_pair
            .max(sddmm.as_ref().map_or(0, &phase_peak))
            .max(post.as_ref().map_or(0, &phase_peak))
            .saturating_add(buffering.saturating_mul(cfg.word_bytes as u64));

        CostReport {
            dataflow: *dataflow,
            total_cycles,
            agg,
            cmb,
            sddmm,
            post,
            counters,
            intermediate_buffer_elems: buffering,
            buffer_peak_bytes,
            pel: plan.pel,
            granularity: plan.granularity,
            sp_optimized: plan.sp_optimized,
            energy,
        }
    }

    /// An admissible (never over-estimating) lower bound on the planned
    /// dataflow's total cycles: per phase, the maximum of the MAC roofline
    /// (`macs / PE footprint`) and the NoC bandwidth floors over the
    /// *compulsory* traffic (streaming inputs, single-write outputs) at that
    /// phase's bandwidth share; phases add under Seq/SP and overlap (max)
    /// under PP. Every term under-counts what the engines charge — stalls,
    /// adjacency traffic, psum spills, tile-synchronization, and fill
    /// overheads only push the true cycle count further up — so pruning on
    /// this bound can never discard a candidate that would have ranked.
    fn lower_bound(&self, plan: &EvalPlan, inter: InterPhase) -> u64 {
        let agg = self.phase_bound(&plan.agg);
        let cmb = self.phase_bound(&plan.cmb);
        // The SDDMM prefix always adds sequentially; its bound deliberately
        // omits the softmax sweeps (a further under-estimate, still
        // admissible).
        let sddmm = plan.sddmm.as_ref().map_or(0, |k| self.phase_bound(k));
        // The elementwise post-phase is a sequential suffix, same reasoning.
        let post = plan.post.as_ref().map_or(0, |k| self.phase_bound(k));
        sddmm
            + post
            + match inter {
                InterPhase::ParallelPipeline => agg.max(cmb),
                _ => agg + cmb,
            }
    }

    fn phase_bound(&self, key: &PhaseKey) -> u64 {
        let Some(fl) = self.phase_floor(key) else { return 0 };
        fl.macs
            .div_ceil(fl.footprint.max(1))
            .max((fl.a_reads + fl.b_reads).div_ceil(fl.bandwidth.dist.max(1) as u64))
            .max(fl.writes.div_ceil(fl.bandwidth.red.max(1) as u64))
    }

    /// The compulsory work and traffic of one planned phase, split by operand
    /// class so [`Self::bound_vector`]'s energy axis can gate out the
    /// (possibly discounted) `Intermediate` class while the cycle bound keeps
    /// summing the raw read streams. `None` when the engine would early-return
    /// a zero report.
    fn phase_floor(&self, key: &PhaseKey) -> Option<PhaseFloor> {
        match key {
            PhaseKey::Spmm { width, tiling, classes, opts } => {
                let v = self.workload.v as u64;
                let w = *width as u64;
                if v == 0 || w == 0 || self.workload.nnz == 0 {
                    return None;
                }
                let macs = self.workload.nnz * w;
                Some(PhaseFloor {
                    macs,
                    footprint: tiling.pe_footprint() as u64,
                    // One gathered dense element per MAC (the engine charges
                    // `edge_visits × width` per pass, which covers each
                    // (edge, column) at least once).
                    a_reads: if opts.input_resident { 0 } else { macs },
                    b_reads: 0,
                    writes: if opts.output_stays_local { 0 } else { v * w },
                    classes: *classes,
                    bandwidth: opts.bandwidth,
                })
            }
            PhaseKey::Gemm { dims, tiling, classes, opts } => {
                let (v, f, g) = (dims.v as u64, dims.f as u64, dims.g as u64);
                if v == 0 || f == 0 || g == 0 {
                    return None;
                }
                Some(PhaseFloor {
                    macs: v * f * g,
                    footprint: tiling.pe_footprint() as u64,
                    a_reads: if opts.input_resident { 0 } else { v * f },
                    // Every weight is fetched at least once.
                    b_reads: f * g,
                    writes: if opts.output_stays_local { 0 } else { v * g },
                    classes: *classes,
                    bandwidth: opts.bandwidth,
                })
            }
            PhaseKey::Sddmm { dot_width, heads, tiling, classes, opts } => {
                let (d, h) = (*dot_width as u64, (*heads).max(1) as u64);
                if self.workload.v == 0 || d == 0 || self.workload.nnz == 0 {
                    return None;
                }
                // Compulsory: one gathered K element per MAC; one score write
                // per (edge, head).
                let macs = h * self.workload.nnz * d;
                Some(PhaseFloor {
                    macs,
                    footprint: tiling.pe_footprint() as u64,
                    a_reads: if opts.input_resident { 0 } else { macs },
                    b_reads: 0,
                    writes: if opts.output_stays_local { 0 } else { h * self.workload.nnz },
                    classes: *classes,
                    bandwidth: opts.bandwidth,
                })
            }
            PhaseKey::Elementwise { wl, tiling, classes, opts } => {
                let elems = wl.elems();
                if elems == 0 {
                    return None;
                }
                // Compulsory: one ALU op and one streamed read per element per
                // sweep, one write-back per element.
                let macs = elems * wl.op.sweeps();
                Some(PhaseFloor {
                    macs,
                    footprint: tiling.pe_footprint() as u64,
                    a_reads: if opts.input_resident { 0 } else { macs },
                    b_reads: 0,
                    writes: if opts.output_stays_local { 0 } else { elems },
                    classes: *classes,
                    bandwidth: opts.bandwidth,
                })
            }
        }
    }

    /// The per-objective admissible bound vector of a planned dataflow:
    /// `[total cycles, energy pJ, buffer-peak bytes]`, each component never
    /// over-estimating the corresponding [`CostReport`] axis.
    ///
    /// * Cycles — [`Self::lower_bound`], unchanged from single-objective
    ///   pruning.
    /// * Energy — the compulsory GB traffic of *non-Intermediate* operand
    ///   classes at the flat GB rate. [`EnergyBreakdown`] charges every
    ///   non-Intermediate access at exactly `gb_access_pj` (only the
    ///   Intermediate class is ever discounted to a partition rate), and the
    ///   bound omits RF, DRAM-overflow, adjacency-structure, softmax, and
    ///   spill energy entirely, so the truth is only ever higher.
    /// * Footprint — the Table III intermediate buffering alone, known from
    ///   the plan without simulation; `compose` adds every phase's strictly
    ///   positive staging peak on top of it.
    fn bound_vector(&self, plan: &EvalPlan, dataflow: &GnnDataflow) -> [f64; 3] {
        let cycles = self.lower_bound(plan, dataflow.inter) as f64;
        let phases = [Some(&plan.agg), Some(&plan.cmb), plan.sddmm.as_ref(), plan.post.as_ref()];
        let mut gb_accesses: u64 = 0;
        for fl in phases.into_iter().flatten().filter_map(|k| self.phase_floor(k)) {
            if fl.classes.a_input != OperandClass::Intermediate {
                gb_accesses += fl.a_reads;
            }
            if fl.classes.b_input != OperandClass::Intermediate {
                gb_accesses += fl.b_reads;
            }
            if fl.classes.output != OperandClass::Intermediate {
                gb_accesses += fl.writes;
            }
        }
        let energy = gb_accesses as f64 * self.energy_model.gb_access_pj;
        let buffering = match dataflow.inter {
            InterPhase::Sequential => self.workload.intermediate_elems(dataflow.phase_order),
            InterPhase::SequentialPipeline => {
                if plan.sp_optimized {
                    0
                } else {
                    plan.pel.unwrap_or(0)
                }
            }
            InterPhase::ParallelPipeline => 2 * plan.pel.unwrap_or(0),
        };
        let footprint = buffering.saturating_mul(self.cfg.word_bytes as u64) as f64;
        [cycles, energy, footprint]
    }
}

/// One phase's compulsory floor (see [`PreparedEval::phase_floor`]): MACs, PE
/// footprint, class-attributed streaming reads (`a`/`b` operands) and
/// single-write outputs, at the phase's bandwidth share.
struct PhaseFloor {
    macs: u64,
    footprint: u64,
    a_reads: u64,
    b_reads: u64,
    writes: u64,
    classes: OperandClasses,
    bandwidth: BandwidthShare,
}

/// A shared, thread-safe memo of phase simulations for one
/// [`PreparedEval`]-prepared workload, keyed by the full phase plan.
///
/// Purely an execution optimisation: hits return the exact [`PhaseStats`] the
/// engine would recompute, so cached and uncached evaluations are
/// bit-identical. Entries whose chunk timelines are enormous (degenerately
/// tiled PP candidates) are recomputed instead of cached to keep the memo's
/// footprint bounded.
#[derive(Debug, Default)]
pub struct PhaseSimCache {
    inner: Mutex<HashMap<PhaseKey, Arc<PhaseStats>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

/// Chunk-timeline length above which a simulation is recomputed per use rather
/// than cached (a degenerately-tiled PP candidate can mark millions of chunks).
const MAX_CACHED_MARKS: usize = 1 << 16;

impl PhaseSimCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from the memo.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that ran a phase engine (unique phase configurations, plus
    /// recomputations of oversized-timeline entries).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Distinct phase configurations currently memoised.
    pub fn len(&self) -> usize {
        lock_recover(&self.inner).len()
    }

    /// `true` when nothing is memoised yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The stats for `key`, simulated via `prep` on miss.
    fn stats(&self, prep: &PreparedEval<'_>, key: &PhaseKey) -> Arc<PhaseStats> {
        if let Some(hit) = lock_recover(&self.inner).get(key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(hit);
        }
        // Simulate outside the lock (sims are long; racing duplicates are
        // deterministic, so first-write-wins is harmless).
        self.misses.fetch_add(1, Ordering::Relaxed);
        let stats = Arc::new(prep.simulate(key));
        if stats.chunk_marks.len() > MAX_CACHED_MARKS {
            return stats;
        }
        lock_recover(&self.inner)
            .entry(*key)
            .or_insert(stats)
            .clone()
    }
}

/// The `Pel` implied by a pipelined dataflow's granularity for `workload`:
/// intermediate-matrix geometry per Section IV-D, with footnote 1's "max tile
/// across the two phases" rule. `None` when the loop-order pair cannot
/// pipeline. Shared by [`evaluate`] and the chain lowering of
/// [`crate::models::to_chain`] so both agree on chunk sizes.
pub(crate) fn intermediate_pel(workload: &GnnWorkload, dataflow: &GnnDataflow) -> Option<u64> {
    let granularity = dataflow.granularity()?;
    let (rows, cols, t_row_max, t_col_max) = match dataflow.phase_order {
        PhaseOrder::AC => (
            workload.v,
            workload.f,
            dataflow.agg.tile_of(Dim::V).max(dataflow.cmb.tile_of(Dim::V)),
            dataflow.agg.tile_of(Dim::F).max(dataflow.cmb.tile_of(Dim::F)),
        ),
        PhaseOrder::CA => (
            workload.v,
            workload.g,
            dataflow.cmb.tile_of(Dim::V).max(dataflow.agg.tile_of(Dim::N)),
            dataflow.cmb.tile_of(Dim::G).max(dataflow.agg.tile_of(Dim::F)),
        ),
    };
    Some(granularity.pel(rows, cols, t_row_max, t_col_max) as u64)
}

/// Rescales a `Pel` measured in intermediate elements onto the SpMM engine's
/// edge-visit progress axis (`pel · visits / elems`, ≥ 1). Shared by the PP
/// path here and [`crate::multiphase`]'s consume-side chunking so the two stay
/// bit-identical — the chain lowering's cycle fidelity depends on it.
pub(crate) fn scale_elems_to_visits(pel_elems: u64, total_elems: u64, total_visits: u64) -> u64 {
    if total_elems == 0 {
        return pel_elems.max(1);
    }
    ((pel_elems as u128 * total_visits as u128) / total_elems as u128).max(1) as u64
}

/// The SpMM engine tracks *consumption* progress in edge-visit units rather
/// than intermediate elements (a CA consumer gathers arbitrary rows); convert
/// `Pel` accordingly so chunk counts roughly align before resampling.
fn chunk_pel(side: ChunkSide, pel_elems: u64, wl: &GnnWorkload, agg_width: usize) -> u64 {
    match side {
        ChunkSide::Produce => pel_elems,
        ChunkSide::Consume => {
            scale_elems_to_visits(pel_elems, (wl.v as u64) * agg_width as u64, wl.nnz * agg_width as u64)
        }
    }
}

/// Convenience: evaluate several dataflows, returning them with their reports.
pub fn evaluate_many<'a>(
    workload: &GnnWorkload,
    dataflows: impl IntoIterator<Item = &'a GnnDataflow>,
    cfg: &AccelConfig,
) -> Vec<Result<CostReport, EvalError>> {
    dataflows.into_iter().map(|df| evaluate(workload, df, cfg)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_dataflow::presets::Preset;
    use omega_graph::DatasetSpec;

    fn small_workload() -> GnnWorkload {
        let d = DatasetSpec::mutag().generate(1);
        GnnWorkload::gcn_layer(&d, 16)
    }

    fn eval_preset(name: &str, wl: &GnnWorkload, cfg: &AccelConfig) -> CostReport {
        let preset = Preset::by_name(name).unwrap();
        let ctx = wl.tile_context(preset.pattern.phase_order);
        let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (cfg.num_pes / 2, cfg.num_pes / 2)
        } else {
            (cfg.num_pes, cfg.num_pes)
        };
        let df = preset.concretize(&ctx, a, c);
        evaluate(wl, &df, cfg).unwrap()
    }

    #[test]
    fn all_presets_evaluate_on_mutag() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        for p in Preset::all() {
            let r = eval_preset(p.name, &wl, &cfg);
            assert!(r.total_cycles > 0, "{}", p.name);
            assert!(r.energy.total_pj() > 0.0, "{}", p.name);
            assert_eq!(r.agg.macs, wl.nnz * wl.f as u64, "{}", p.name);
            assert_eq!(r.cmb.macs, (wl.v * wl.f * wl.g) as u64, "{}", p.name);
        }
    }

    #[test]
    fn seq_runtime_is_sum_of_phases() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let r = eval_preset("Seq1", &wl, &cfg);
        assert_eq!(r.total_cycles, r.agg.cycles + r.cmb.cycles);
        // Table III: Seq buffers the whole V×F intermediate.
        assert_eq!(r.intermediate_buffer_elems, (wl.v * wl.f) as u64);
        assert!(!r.sp_optimized);
        assert!(r.granularity.is_none());
    }

    #[test]
    fn sp_optimized_has_zero_intermediate_buffering_and_traffic() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let r = eval_preset("SP2", &wl, &cfg);
        assert!(r.sp_optimized);
        assert_eq!(r.intermediate_buffer_elems, 0);
        use omega_accel::OperandClass;
        assert_eq!(r.counters.gb_of(OperandClass::Intermediate), 0);
        assert_eq!(r.total_cycles, r.agg.cycles + r.cmb.cycles);
    }

    #[test]
    fn sp_beats_seq_on_intermediate_energy() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let seq = eval_preset("Seq1", &wl, &cfg);
        let sp = eval_preset("SP2", &wl, &cfg);
        assert!(sp.energy.intermediate_pj < seq.energy.intermediate_pj);
    }

    #[test]
    fn pp_buffers_two_pel_and_uses_pipeline_runtime() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let r = eval_preset("PP3", &wl, &cfg);
        let pel = r.pel.unwrap();
        assert_eq!(r.intermediate_buffer_elems, 2 * pel);
        // Pipelining overlaps: total < sum of phases, ≥ the slower phase.
        assert!(r.total_cycles <= r.agg.cycles + r.cmb.cycles);
        assert!(r.total_cycles >= r.agg.cycles.max(r.cmb.cycles));
        assert!(r.granularity.is_some());
    }

    #[test]
    fn pp_intermediate_energy_discounted_by_partition() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let seq = eval_preset("Seq1", &wl, &cfg);
        let pp = eval_preset("PP1", &wl, &cfg);
        // Same order of intermediate accesses but the PP partition is small →
        // cheaper per access.
        let seq_rate = seq.energy.intermediate_pj
            / seq.counters.gb_of(omega_accel::OperandClass::Intermediate).max(1) as f64;
        let pp_rate = pp.energy.intermediate_pj
            / pp.counters.gb_of(omega_accel::OperandClass::Intermediate).max(1) as f64;
        assert!(pp_rate < seq_rate, "pp {pp_rate} vs seq {seq_rate}");
    }

    #[test]
    fn buffer_peak_composes_like_the_runtime() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let phase_peak = |s: &PhaseStats| -> u64 {
            s.gb_peak_bytes.saturating_add(s.rf_peak_bytes.saturating_mul(s.pe_footprint as u64))
        };
        // Sequential: max of the phase peaks plus Table III buffering.
        let seq = eval_preset("Seq1", &wl, &cfg);
        assert!(seq.buffer_peak_bytes > 0);
        assert_eq!(
            seq.buffer_peak_bytes,
            phase_peak(&seq.agg).max(phase_peak(&seq.cmb))
                + seq.intermediate_buffer_elems * cfg.word_bytes as u64
        );
        // ParallelPipeline: concurrent phases add, plus the 2×Pel ping-pong.
        let pp = eval_preset("PP3", &wl, &cfg);
        assert_eq!(
            pp.buffer_peak_bytes,
            phase_peak(&pp.agg)
                + phase_peak(&pp.cmb)
                + pp.intermediate_buffer_elems * cfg.word_bytes as u64
        );
    }

    #[test]
    fn enforce_capacity_is_identity_when_unbounded_and_costed_when_finite() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default(); // enforce_capacity defaults off
        let baseline = eval_preset("Seq1", &wl, &cfg);
        // Turning enforcement on with the (ample) default budgets must not
        // change anything unless a working set actually overflows.
        let mut enforced = cfg;
        enforced.knobs.enforce_capacity = true;
        enforced.rf_bytes_per_pe = usize::MAX;
        enforced.gb_bytes = usize::MAX;
        let wide = {
            let preset = Preset::by_name("Seq1").unwrap();
            let ctx = wl.tile_context(preset.pattern.phase_order);
            let df = preset.concretize(&ctx, enforced.num_pes, enforced.num_pes);
            evaluate(&wl, &df, &enforced).unwrap()
        };
        assert_eq!(wide.total_cycles, baseline.total_cycles);
        assert_eq!(wide.counters.total_gb_reads() + wide.counters.total_gb_writes(), baseline.counters.total_gb_reads() + baseline.counters.total_gb_writes());
        // A starved global buffer forces spill traffic and extra cycles.
        let mut tight = enforced;
        tight.gb_bytes = 1 << 10;
        let starved = {
            let preset = Preset::by_name("Seq1").unwrap();
            let ctx = wl.tile_context(preset.pattern.phase_order);
            let df = preset.concretize(&ctx, tight.num_pes, tight.num_pes);
            evaluate(&wl, &df, &tight).unwrap()
        };
        assert!(starved.total_cycles > baseline.total_cycles);
        assert!(starved.counters.total_gb_reads() + starved.counters.total_gb_writes() > baseline.counters.total_gb_reads() + baseline.counters.total_gb_writes());
        // The reported demand itself is capacity-independent.
        assert_eq!(starved.buffer_peak_bytes, baseline.buffer_peak_bytes);
    }

    #[test]
    fn illegal_dataflow_is_rejected() {
        use omega_dataflow::{IntraTiling, LoopOrder, Phase};
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::N, Dim::V, Dim::F]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        let df = GnnDataflow {
            inter: InterPhase::ParallelPipeline,
            phase_order: PhaseOrder::AC,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [1, 2, 2]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [2, 2, 1]),
        };
        let err = evaluate(&wl, &df, &cfg).unwrap_err();
        assert!(matches!(err, EvalError::Invalid(_)));
        assert!(err.to_string().contains("NVF"));
    }

    #[test]
    fn ca_phase_order_evaluates() {
        use omega_dataflow::{IntraTiling, LoopOrder, Phase};
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        // Seq CA with simple tilings.
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        let df = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: PhaseOrder::CA,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [16, 16, 1]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [32, 16, 1]),
        };
        let r = evaluate(&wl, &df, &cfg).unwrap();
        // CA aggregation streams G-wide rows.
        assert_eq!(r.agg.macs, wl.nnz * wl.g as u64);
        // CA intermediate is V×G.
        assert_eq!(r.intermediate_buffer_elems, (wl.v * wl.g) as u64);
    }

    fn gat_workload() -> GnnWorkload {
        let d = DatasetSpec::mutag().generate(1);
        GnnWorkload::gat_layer(&d, 16, 4)
    }

    #[test]
    fn gat_workload_prepends_a_scoring_phase() {
        let wl = gat_workload();
        let cfg = AccelConfig::paper_default();
        for name in ["Seq1", "SP2", "PP3"] {
            let r = eval_preset(name, &wl, &cfg);
            let sddmm = r.sddmm.as_ref().expect("attention workload scores");
            // heads × nnz × (F/heads) dot MACs; sequential prefix.
            let att = wl.attention.unwrap();
            assert_eq!(
                sddmm.macs,
                wl.nnz * (att.heads * att.dot_width(wl.f)) as u64,
                "{name}"
            );
            assert!(sddmm.cycles > 0, "{name}");
            let base = match name {
                // PP overlaps agg/cmb, Seq/SP add them.
                "PP3" => r.total_cycles,
                _ => r.agg.cycles + r.cmb.cycles + sddmm.cycles,
            };
            assert_eq!(
                r.total_cycles, base,
                "{name}: sddmm must add sequentially"
            );
            // Scores flow through the Score bucket somewhere (GB or RF).
            let plain = {
                let mut p = wl.clone();
                p.attention = None;
                eval_preset(name, &p, &cfg)
            };
            assert!(r.total_cycles > plain.total_cycles, "{name}");
        }
    }

    #[test]
    fn sp_optimized_gat_keeps_scores_in_the_register_files() {
        let wl = gat_workload();
        let cfg = AccelConfig::paper_default();
        let seq = eval_preset("Seq1", &wl, &cfg);
        let sp = eval_preset("SP2", &wl, &cfg);
        use omega_accel::OperandClass;
        assert!(seq.counters.gb_of(OperandClass::EdgeScore) > 0);
        assert_eq!(sp.counters.gb_of(OperandClass::EdgeScore), 0, "SP-Optimized scores stay local");
    }

    #[test]
    fn gat_rejects_ca_and_sddmm_illegal_orders() {
        use omega_dataflow::{IntraTiling, LoopOrder, Phase};
        let wl = gat_workload();
        let cfg = AccelConfig::paper_default();
        // CA phase order: scores need the AC structure.
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        let ca = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: PhaseOrder::CA,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [16, 16, 1]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [32, 16, 1]),
        };
        assert_eq!(evaluate(&wl, &ca, &cfg).unwrap_err(), EvalError::AttentionRequiresAc);
        // N-before-V aggregation order: the SDDMM cannot stream its softmax.
        let nvf = LoopOrder::new(Phase::Aggregation, [Dim::N, Dim::V, Dim::F]).unwrap();
        let bad = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: PhaseOrder::AC,
            agg: IntraTiling::new(Phase::Aggregation, nvf, [1, 16, 16]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [32, 16, 1]),
        };
        let err = evaluate(&wl, &bad, &cfg).unwrap_err();
        assert!(matches!(
            err,
            EvalError::Invalid(ValidationError::SddmmOrderUnsupported { .. })
        ));
        // The same dataflows are fine without attention.
        let mut plain = wl.clone();
        plain.attention = None;
        assert!(evaluate(&plain, &ca, &cfg).is_ok());
        assert!(evaluate(&plain, &bad, &cfg).is_ok());
    }

    #[test]
    fn gat_cached_evaluation_is_bit_identical() {
        let wl = gat_workload();
        let cfg = AccelConfig::paper_default();
        let prep = PreparedEval::new(&wl, &cfg);
        let cache = PhaseSimCache::new();
        let ctx = wl.tile_context(PhaseOrder::AC);
        for name in ["Seq1", "Seq2", "SP1", "SP2", "PP1"] {
            let df = Preset::by_name(name).unwrap().concretize(&ctx, 512, 512);
            let direct = prep.evaluate(&df).unwrap();
            let cached = prep.evaluate_with_cache(&df, &cache).unwrap();
            assert_eq!(direct.total_cycles, cached.total_cycles, "{name}");
            assert_eq!(direct.counters, cached.counters, "{name}");
            assert_eq!(
                direct.sddmm.as_ref().map(|s| s.cycles),
                cached.sddmm.as_ref().map(|s| s.cycles),
                "{name}"
            );
        }
        assert!(cache.hits() > 0, "shared agg tilings must share SDDMM sims");
    }

    #[test]
    fn post_op_adds_a_sequential_elementwise_suffix() {
        use omega_accel::engine::ElementwiseOp;
        let mut wl = small_workload();
        let cfg = AccelConfig::paper_default();
        for name in ["Seq1", "SP2", "PP3"] {
            let plain = eval_preset(name, &wl, &cfg);
            assert!(plain.post.is_none(), "{name}");
            wl.post_op = Some(ElementwiseOp::Activation);
            let act = eval_preset(name, &wl, &cfg);
            let post = act.post.as_ref().expect("post stats");
            assert!(post.cycles > 0, "{name}");
            // One ALU op per output element for the activation sweep.
            assert_eq!(post.macs, (wl.v * wl.g) as u64, "{name}");
            // The suffix adds sequentially on top of the unchanged composition.
            assert_eq!(act.total_cycles, plain.total_cycles + post.cycles, "{name}");
            assert_eq!(act.agg.cycles, plain.agg.cycles, "{name}");
            assert_eq!(act.cmb.cycles, plain.cmb.cycles, "{name}");
            // LayerNorm's stats sweep costs more than the activation.
            wl.post_op = Some(ElementwiseOp::LayerNorm);
            let norm = eval_preset(name, &wl, &cfg);
            let norm_post = norm.post.as_ref().unwrap();
            assert_eq!(norm_post.macs, 2 * (wl.v * wl.g) as u64, "{name}");
            assert!(norm_post.cycles > post.cycles, "{name}");
            wl.post_op = None;
        }
    }

    #[test]
    fn post_op_follows_the_final_phase_tiling_under_ca() {
        use omega_accel::engine::ElementwiseOp;
        use omega_dataflow::{IntraTiling, LoopOrder, Phase};
        let mut wl = small_workload();
        wl.post_op = Some(ElementwiseOp::LayerNorm);
        let cfg = AccelConfig::paper_default();
        let agg_order = LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).unwrap();
        let cmb_order = LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).unwrap();
        let df = GnnDataflow {
            inter: InterPhase::Sequential,
            phase_order: PhaseOrder::CA,
            agg: IntraTiling::new(Phase::Aggregation, agg_order, [16, 16, 1]),
            cmb: IntraTiling::new(Phase::Combination, cmb_order, [32, 16, 1]),
        };
        let r = evaluate(&wl, &df, &cfg).unwrap();
        let post = r.post.as_ref().expect("post stats");
        // Two sweeps over V×G on the CA-final (Aggregation) tiling.
        assert_eq!(post.macs, 2 * (wl.v * wl.g) as u64);
        assert_eq!(r.total_cycles, r.agg.cycles + r.cmb.cycles + post.cycles);
        // Post traffic lands in the Output bucket.
        use omega_accel::OperandClass;
        assert!(r.counters.gb_of(OperandClass::Output) > 0);
    }

    #[test]
    fn post_op_cached_evaluation_is_bit_identical() {
        use omega_accel::engine::ElementwiseOp;
        let mut wl = small_workload();
        wl.post_op = Some(ElementwiseOp::Activation);
        let cfg = AccelConfig::paper_default();
        let prep = PreparedEval::new(&wl, &cfg);
        let cache = PhaseSimCache::new();
        let ctx = wl.tile_context(PhaseOrder::AC);
        for name in ["Seq1", "Seq2", "SP1", "SP2", "PP1"] {
            let df = Preset::by_name(name).unwrap().concretize(&ctx, 512, 512);
            let direct = prep.evaluate(&df).unwrap();
            let cached = prep.evaluate_with_cache(&df, &cache).unwrap();
            assert_eq!(direct.total_cycles, cached.total_cycles, "{name}");
            assert_eq!(direct.counters, cached.counters, "{name}");
            assert_eq!(
                direct.post.as_ref().map(|s| s.cycles),
                cached.post.as_ref().map(|s| s.cycles),
                "{name}"
            );
        }
        assert!(cache.hits() > 0, "shared final tilings must share post sims");
    }

    #[test]
    fn evaluate_many_collects() {
        let wl = small_workload();
        let cfg = AccelConfig::paper_default();
        let ctx = wl.tile_context(PhaseOrder::AC);
        let dfs: Vec<GnnDataflow> = ["Seq1", "SP1"]
            .iter()
            .map(|n| Preset::by_name(n).unwrap().concretize(&ctx, 512, 512))
            .collect();
        let results = evaluate_many(&wl, dfs.iter(), &cfg);
        assert_eq!(results.len(), 2);
        assert!(results.iter().all(|r| r.is_ok()));
    }
}
