//! The [`Graph`] type consumed by the accelerator simulator.

use omega_matrix::{CsrMatrix, DenseMatrix, Elem};

/// A graph workload: CSR adjacency plus an input-feature width.
///
/// The adjacency matrix here is the operand `A` of the Aggregation phase
/// (`H = A · X0`). It already includes whatever preprocessing the GNN layer
/// prescribes (self loops, symmetric normalisation) — the simulator treats it as an
/// opaque sparse operand, exactly as the paper does.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Human-readable name (dataset name or generator tag).
    pub name: String,
    adjacency: CsrMatrix,
    feature_dim: usize,
}

impl Graph {
    /// Wraps an adjacency matrix and feature width into a graph workload.
    ///
    /// # Panics
    /// Panics if the adjacency matrix is not square — a graph adjacency relates
    /// vertices to vertices.
    pub fn new(name: impl Into<String>, adjacency: CsrMatrix, feature_dim: usize) -> Self {
        assert_eq!(adjacency.rows(), adjacency.cols(), "adjacency must be square");
        Graph { name: name.into(), adjacency, feature_dim }
    }

    /// Number of vertices `V`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.adjacency.rows()
    }

    /// Number of stored adjacency non-zeros (directed edge slots, incl. self loops).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.adjacency.nnz()
    }

    /// Input feature width `F`.
    #[inline]
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// The adjacency operand.
    #[inline]
    pub fn adjacency(&self) -> &CsrMatrix {
        &self.adjacency
    }

    /// Degree (stored non-zeros) of vertex `v`.
    #[inline]
    pub fn degree(&self, v: usize) -> usize {
        self.adjacency.row_nnz(v)
    }

    /// Deterministic synthetic feature matrix `X0` (`V × F`), for functional
    /// end-to-end runs. Values are small integers so accumulation across different
    /// dataflow orders stays exact in `f32`.
    pub fn features(&self, seed: u64) -> DenseMatrix {
        let f = self.feature_dim;
        DenseMatrix::from_fn(self.num_vertices(), f, move |i, j| {
            // SplitMix64-style bit mix for a cheap, seedable, uniform value.
            let mut z = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(seed);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            ((z >> 61) as Elem) - 3.0 // uniform in {-3..4}
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use omega_matrix::CooMatrix;

    fn tiny() -> Graph {
        let mut coo = CooMatrix::new(3, 3);
        for (r, c) in [(0, 0), (0, 1), (1, 1), (2, 0), (2, 2)] {
            coo.push(r, c, 1.0).unwrap();
        }
        Graph::new("tiny", coo.to_csr(), 4)
    }

    #[test]
    fn accessors() {
        let g = tiny();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 5);
        assert_eq!(g.feature_dim(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 1);
        assert_eq!(g.name, "tiny");
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_adjacency_rejected() {
        let coo = CooMatrix::new(2, 3);
        Graph::new("bad", coo.to_csr(), 1);
    }

    #[test]
    fn features_are_deterministic_and_shaped() {
        let g = tiny();
        let x0 = g.features(7);
        let x0_again = g.features(7);
        assert_eq!(x0, x0_again);
        assert_eq!(x0.shape(), (3, 4));
        // Different seed → different content (overwhelmingly likely).
        let x1 = g.features(8);
        assert_ne!(x0, x1);
        // Values stay in the small-integer band.
        assert!(x0.as_slice().iter().all(|&v| (-3.0..=4.0).contains(&v)));
    }
}
