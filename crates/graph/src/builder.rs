//! Edge-list graph construction with GNN-style preprocessing.

use omega_matrix::{CooMatrix, CsrMatrix, Elem};

use crate::Graph;

/// Builds a [`Graph`] from an edge list, with the preprocessing steps GCN-style
/// layers expect: symmetrisation, self loops, and optional symmetric normalisation
/// `D^{-1/2} (A + I) D^{-1/2}` (Kipf & Welling).
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    num_vertices: usize,
    feature_dim: usize,
    edges: Vec<(u32, u32)>,
    undirected: bool,
    self_loops: bool,
    normalise: bool,
}

impl GraphBuilder {
    /// Starts a builder for a graph with `num_vertices` vertices and `feature_dim`
    /// input features.
    pub fn new(name: impl Into<String>, num_vertices: usize, feature_dim: usize) -> Self {
        GraphBuilder {
            name: name.into(),
            num_vertices,
            feature_dim,
            edges: Vec::new(),
            undirected: true,
            self_loops: true,
            normalise: false,
        }
    }

    /// Adds an edge `u → v`. Ignores out-of-range endpoints silently? No — panics,
    /// because a generator producing out-of-range endpoints is a bug.
    pub fn edge(&mut self, u: usize, v: usize) -> &mut Self {
        assert!(u < self.num_vertices && v < self.num_vertices, "edge ({u},{v}) out of range");
        self.edges.push((u as u32, v as u32));
        self
    }

    /// Adds many edges at once.
    pub fn edges(&mut self, list: impl IntoIterator<Item = (usize, usize)>) -> &mut Self {
        for (u, v) in list {
            self.edge(u, v);
        }
        self
    }

    /// Whether to mirror every edge (default `true`; the paper's graphs are
    /// undirected).
    pub fn undirected(&mut self, yes: bool) -> &mut Self {
        self.undirected = yes;
        self
    }

    /// Whether to add self loops (default `true`; GCN aggregation includes the
    /// vertex's own features — the paper's Fig. 3 example has them).
    pub fn self_loops(&mut self, yes: bool) -> &mut Self {
        self.self_loops = yes;
        self
    }

    /// Whether to apply symmetric GCN normalisation (default `false`; normalisation
    /// changes values, not structure, so the cost model is unaffected).
    pub fn normalise(&mut self, yes: bool) -> &mut Self {
        self.normalise = yes;
        self
    }

    /// Number of vertices this builder was configured with.
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Finalises the adjacency matrix and wraps it in a [`Graph`].
    pub fn build(&self) -> Graph {
        let n = self.num_vertices;
        let mut coo = CooMatrix::with_capacity(n, n, self.edges.len() * 2 + n);
        for &(u, v) in &self.edges {
            coo.push(u as usize, v as usize, 1.0).expect("validated in edge()");
            if self.undirected && u != v {
                coo.push(v as usize, u as usize, 1.0).expect("validated in edge()");
            }
        }
        if self.self_loops {
            for v in 0..n {
                coo.push(v, v, 1.0).expect("in range");
            }
        }
        // Duplicate edges collapse to a single structural non-zero: adjacency is a
        // 0/1 pattern regardless of how many times a generator emitted the pair.
        let mut csr = clamp_binary(coo.to_csr());
        if self.normalise {
            csr = gcn_normalise(&csr);
        }
        Graph::new(self.name.clone(), csr, self.feature_dim)
    }
}

/// Replaces every stored value with 1.0 (structure-only adjacency).
fn clamp_binary(csr: CsrMatrix) -> CsrMatrix {
    let (rows, cols) = csr.shape();
    let row_ptr = csr.row_ptr().to_vec();
    let col_idx = csr.col_idx().to_vec();
    let values = vec![1.0; col_idx.len()];
    CsrMatrix::from_raw_parts(rows, cols, row_ptr, col_idx, values)
        .expect("re-assembling a valid CSR")
}

/// Symmetric normalisation `D^{-1/2} A D^{-1/2}` over the stored pattern.
fn gcn_normalise(csr: &CsrMatrix) -> CsrMatrix {
    let n = csr.rows();
    let inv_sqrt_deg: Vec<Elem> = (0..n)
        .map(|v| {
            let d = csr.row_nnz(v) as Elem;
            if d > 0.0 {
                1.0 / d.sqrt()
            } else {
                0.0
            }
        })
        .collect();
    let row_ptr = csr.row_ptr().to_vec();
    let col_idx = csr.col_idx().to_vec();
    let mut values = Vec::with_capacity(csr.nnz());
    for r in 0..n {
        for (c, v) in csr.row_iter(r) {
            values.push(v * inv_sqrt_deg[r] * inv_sqrt_deg[c]);
        }
    }
    CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, values).expect("same structure")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrises_and_adds_self_loops() {
        let g = GraphBuilder::new("t", 3, 2).edges([(0, 1), (1, 2)]).build();
        let a = g.adjacency();
        // 2 undirected edges → 4 directed + 3 self loops.
        assert_eq!(a.nnz(), 7);
        assert!(a.row_cols(1).contains(&0));
        assert!(a.row_cols(0).contains(&1));
        for v in 0..3 {
            assert!(a.row_cols(v).contains(&(v as u32)), "self loop at {v}");
        }
    }

    #[test]
    fn directed_mode_keeps_one_direction() {
        let g = GraphBuilder::new("t", 3, 1)
            .undirected(false)
            .self_loops(false)
            .edges([(0, 1)])
            .build();
        assert_eq!(g.num_edges(), 1);
        assert!(g.adjacency().row_cols(1).is_empty());
    }

    #[test]
    fn duplicate_edges_collapse() {
        let g = GraphBuilder::new("t", 2, 1)
            .self_loops(false)
            .edges([(0, 1), (0, 1), (1, 0)])
            .build();
        assert_eq!(g.num_edges(), 2); // (0,1) and (1,0), each once
        assert_eq!(g.adjacency().row_vals(0), &[1.0]);
    }

    #[test]
    fn self_loop_edge_not_double_counted() {
        let g = GraphBuilder::new("t", 2, 1).edges([(0, 0)]).build();
        // (0,0) from the edge list merges with the structural self loop.
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn normalisation_scales_rows() {
        let g = GraphBuilder::new("t", 2, 1).normalise(true).edges([(0, 1)]).build();
        let a = g.adjacency();
        // Both vertices have degree 2 (neighbour + self loop): every value 1/2.
        for r in 0..2 {
            for (_, v) in a.row_iter(r) {
                assert!((v - 0.5).abs() < 1e-6);
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        GraphBuilder::new("t", 2, 1).edge(0, 5);
    }
}
