//! Block-diagonal batching of graph-classification workloads.

use omega_matrix::CsrMatrix;

use crate::Graph;

/// Concatenates several graphs into one block-diagonal super-graph.
///
/// Graph-classification inference processes a *batch* of graphs at once; stacking
/// their adjacency matrices block-diagonally turns the batch into a single SpMM,
/// which is how the paper evaluates the TU datasets ("we evaluate one batch of 64
/// graphs ... batch of 32 graphs for RedditBIN", Section V-A2).
///
/// # Panics
/// Panics if `graphs` is empty or the feature widths disagree — a batch mixes
/// graphs of one dataset only.
pub fn batch_graphs(name: impl Into<String>, graphs: &[Graph]) -> Graph {
    assert!(!graphs.is_empty(), "cannot batch zero graphs");
    let feature_dim = graphs[0].feature_dim();
    assert!(
        graphs.iter().all(|g| g.feature_dim() == feature_dim),
        "all graphs in a batch must share the feature width"
    );
    let total_v: usize = graphs.iter().map(|g| g.num_vertices()).sum();
    let total_nnz: usize = graphs.iter().map(|g| g.num_edges()).sum();

    let mut row_ptr = Vec::with_capacity(total_v + 1);
    let mut col_idx = Vec::with_capacity(total_nnz);
    let mut values = Vec::with_capacity(total_nnz);
    row_ptr.push(0u32);
    let mut vert_offset = 0u32;
    for g in graphs {
        let a = g.adjacency();
        for r in 0..a.rows() {
            for (c, v) in a.row_iter(r) {
                col_idx.push(vert_offset + c as u32);
                values.push(v);
            }
            row_ptr.push(col_idx.len() as u32);
        }
        vert_offset += a.rows() as u32;
    }
    let adj = CsrMatrix::from_raw_parts(total_v, total_v, row_ptr, col_idx, values)
        .expect("block-diagonal assembly preserves CSR invariants");
    Graph::new(name, adj, feature_dim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn path_graph(n: usize, f: usize) -> Graph {
        let mut b = GraphBuilder::new("path", n, f);
        for v in 0..n.saturating_sub(1) {
            b.edge(v, v + 1);
        }
        b.build()
    }

    #[test]
    fn batch_concatenates_blocks() {
        let g1 = path_graph(3, 4);
        let g2 = path_graph(2, 4);
        let b = batch_graphs("batch", &[g1.clone(), g2.clone()]);
        assert_eq!(b.num_vertices(), 5);
        assert_eq!(b.num_edges(), g1.num_edges() + g2.num_edges());
        // Edges of the second block are offset by 3.
        assert!(b.adjacency().row_cols(3).contains(&4));
        assert!(b.adjacency().row_cols(3).contains(&3)); // self loop preserved
        // No cross-block edges.
        for r in 0..3 {
            assert!(b.adjacency().row_cols(r).iter().all(|&c| c < 3));
        }
        for r in 3..5 {
            assert!(b.adjacency().row_cols(r).iter().all(|&c| c >= 3));
        }
    }

    #[test]
    fn batch_of_one_is_isomorphic() {
        let g = path_graph(4, 2);
        let b = batch_graphs("one", std::slice::from_ref(&g));
        assert_eq!(b.adjacency().to_dense(), g.adjacency().to_dense());
    }

    #[test]
    #[should_panic(expected = "zero graphs")]
    fn empty_batch_panics() {
        batch_graphs("none", &[]);
    }

    #[test]
    #[should_panic(expected = "feature width")]
    fn mixed_feature_width_panics() {
        batch_graphs("bad", &[path_graph(2, 3), path_graph(2, 4)]);
    }
}
