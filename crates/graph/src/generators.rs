//! Seeded random-graph generators covering the degree regimes of Table IV.
//!
//! Three shapes are enough to reproduce the paper's workload categories:
//!
//! * [`erdos_renyi`] — near-uniform degrees at a target density. Dense instances
//!   stand in for the ego-network collaboration sets (Imdb-bin, Collab — the "HE"
//!   category with high edges/vertex).
//! * [`chung_lu`] — expected-degree model with a power-law weight sequence. This
//!   produces the skewed degree distributions (hub vertices, the paper's "evil
//!   rows") of citation/social graphs (Citeseer, Cora, Reddit-bin).
//! * [`ring_molecule`] — ring backbone plus sparse chords: near-regular low-degree
//!   graphs like the molecular sets (Mutag, Proteins — "LEF").
//!
//! All generators are deterministic given the seed and return a [`GraphBuilder`] so
//! callers can still toggle self loops / normalisation before building.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::GraphBuilder;

/// Erdős–Rényi `G(n, m)`: exactly `undirected_edges` distinct undirected non-loop
/// edges chosen uniformly (when that many distinct pairs exist; otherwise the
/// complete graph).
pub fn erdos_renyi(
    name: &str,
    n: usize,
    undirected_edges: usize,
    feature_dim: usize,
    seed: u64,
) -> GraphBuilder {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(name, n, feature_dim);
    if n < 2 {
        return b;
    }
    let max_edges = n * (n - 1) / 2;
    let m = undirected_edges.min(max_edges);
    if m * 3 >= max_edges {
        // Dense regime: Floyd-style sampling over the edge index space avoids long
        // rejection loops when the graph is nearly complete (Collab is ~90% dense).
        let mut picked = sample_distinct(&mut rng, max_edges, m);
        picked.sort_unstable();
        for idx in picked {
            let (u, v) = unrank_pair(idx, n);
            b.edge(u, v);
        }
    } else {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.edge(key.0, key.1);
            }
        }
    }
    b
}

/// Chung-Lu expected-degree graph with a truncated power-law weight sequence.
///
/// Vertex `i` gets weight `w_i ∝ (i + 5)^{-1/(γ-1)}` scaled so the expected number
/// of undirected edges is `undirected_edges`. Edge `(u, v)` appears with probability
/// `min(1, w_u · w_v / Σw)`. `gamma ≈ 2.1` gives pronounced hubs ("evil rows");
/// larger `gamma` flattens the distribution.
pub fn chung_lu(
    name: &str,
    n: usize,
    undirected_edges: usize,
    gamma: f64,
    feature_dim: usize,
    seed: u64,
) -> GraphBuilder {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(name, n, feature_dim);
    if n < 2 || undirected_edges == 0 {
        return b;
    }
    let alpha = 1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 5) as f64).powf(-alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    // Scale so that Σ w_i = expected total degree = 2 * edges.
    let scale = (2.0 * undirected_edges as f64) / wsum;
    for w in &mut weights {
        *w *= scale;
    }
    let total_w: f64 = weights.iter().sum();
    // Efficient Chung-Lu sampling (Miller & Hagberg): walk vertices in weight order,
    // skipping geometrically — O(n + m) instead of O(n²).
    for u in 0..n {
        let mut v = u + 1;
        let mut p = (weights[u] * weights[v.min(n - 1)] / total_w).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(0.0f64..1.0).max(f64::MIN_POSITIVE);
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                v += skip;
            }
            if v >= n {
                break;
            }
            let q = (weights[u] * weights[v] / total_w).min(1.0);
            if rng.gen_range(0.0f64..1.0) < q / p {
                b.edge(u, v);
            }
            p = q;
            v += 1;
        }
    }
    b
}

/// Ego network: vertex 0 (the ego) connects to every other vertex, and the
/// remaining `undirected_edges - (n-1)` edges are uniform among the alters —
/// the shape of the Imdb-bin / Collab collaboration graphs, where each graph is
/// an actor's or researcher's ego net and the ego row is a guaranteed hub.
pub fn ego_network(
    name: &str,
    n: usize,
    undirected_edges: usize,
    feature_dim: usize,
    seed: u64,
) -> GraphBuilder {
    if n < 2 {
        return GraphBuilder::new(name, n, feature_dim);
    }
    let spokes = n - 1;
    let rest = undirected_edges.saturating_sub(spokes);
    // Alters form an ER graph among themselves (indices 1..n).
    let mut b = erdos_renyi_offset(name, n, 1, rest, feature_dim, seed);
    for v in 1..n {
        b.edge(0, v);
    }
    b
}

/// ER over vertices `[lo, n)` of an `n`-vertex builder (helper for ego nets).
fn erdos_renyi_offset(
    name: &str,
    n: usize,
    lo: usize,
    undirected_edges: usize,
    feature_dim: usize,
    seed: u64,
) -> GraphBuilder {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(name, n, feature_dim);
    let m_nodes = n - lo;
    if m_nodes < 2 {
        return b;
    }
    let max_edges = m_nodes * (m_nodes - 1) / 2;
    let m = undirected_edges.min(max_edges);
    if m * 3 >= max_edges {
        let mut picked = sample_distinct(&mut rng, max_edges, m);
        picked.sort_unstable();
        for idx in picked {
            let (u, v) = unrank_pair(idx, m_nodes);
            b.edge(lo + u, lo + v);
        }
    } else {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.gen_range(lo..n);
            let v = rng.gen_range(lo..n);
            if u == v {
                continue;
            }
            let key = if u < v { (u, v) } else { (v, u) };
            if seen.insert(key) {
                b.edge(key.0, key.1);
            }
        }
    }
    b
}

/// Ring backbone with `chords` extra random chords: near-regular molecular-style
/// graphs (degree ≈ 2 + small noise), matching Mutag/Proteins where edges/vertex
/// is barely above 1 (undirected).
pub fn ring_molecule(name: &str, n: usize, chords: usize, feature_dim: usize, seed: u64) -> GraphBuilder {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(name, n, feature_dim);
    if n < 2 {
        return b;
    }
    for v in 0..n {
        b.edge(v, (v + 1) % n);
    }
    for _ in 0..chords {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u != v {
            b.edge(u.min(v), u.max(v));
        }
    }
    b
}

/// Samples `k` distinct values from `0..space` (Floyd's algorithm).
fn sample_distinct(rng: &mut StdRng, space: usize, k: usize) -> Vec<usize> {
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in space - k..space {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

/// Maps a linear index in `0..n(n-1)/2` to the corresponding unordered pair.
fn unrank_pair(mut idx: usize, n: usize) -> (usize, usize) {
    // Row u has (n - 1 - u) pairs (u, u+1..n).
    for u in 0..n - 1 {
        let row = n - 1 - u;
        if idx < row {
            return (u, u + 1 + idx);
        }
        idx -= row;
    }
    unreachable!("index within pair space");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_hits_edge_target() {
        let g = erdos_renyi("er", 50, 200, 8, 1).self_loops(false).build();
        // 200 undirected edges → 400 directed nnz.
        assert_eq!(g.num_edges(), 400);
    }

    #[test]
    fn erdos_renyi_dense_regime() {
        // 20 vertices → 190 possible edges; ask for 170 (dense path).
        let g = erdos_renyi("er", 20, 170, 4, 2).self_loops(false).build();
        assert_eq!(g.num_edges(), 340);
    }

    #[test]
    fn erdos_renyi_clamps_to_complete_graph() {
        let g = erdos_renyi("er", 5, 1000, 4, 3).self_loops(false).build();
        assert_eq!(g.num_edges(), 5 * 4);
    }

    #[test]
    fn erdos_renyi_is_deterministic() {
        let a = erdos_renyi("er", 30, 60, 4, 7).build();
        let b = erdos_renyi("er", 30, 60, 4, 7).build();
        assert_eq!(a.adjacency().col_idx(), b.adjacency().col_idx());
        let c = erdos_renyi("er", 30, 60, 4, 8).build();
        assert_ne!(a.adjacency().col_idx(), c.adjacency().col_idx());
    }

    #[test]
    fn chung_lu_produces_skewed_degrees() {
        let g = chung_lu("cl", 1000, 3000, 2.1, 8, 5).self_loops(false).build();
        let nnz = g.num_edges();
        // Within 40% of the 2 * 3000 directed target (random model).
        assert!((3600..=8400).contains(&nnz), "nnz = {nnz}");
        let mean = g.adjacency().mean_degree();
        let max = g.adjacency().max_degree() as f64;
        // Hub vertices ("evil rows"): max degree far above mean.
        assert!(max > 6.0 * mean, "max {max} vs mean {mean}");
    }

    #[test]
    fn chung_lu_is_deterministic() {
        let a = chung_lu("cl", 200, 500, 2.3, 4, 11).build();
        let b = chung_lu("cl", 200, 500, 2.3, 4, 11).build();
        assert_eq!(a.adjacency().col_idx(), b.adjacency().col_idx());
    }

    #[test]
    fn ring_molecule_is_near_regular() {
        let g = ring_molecule("mol", 18, 2, 8, 3).self_loops(false).build();
        // Ring: every degree ≥ 2; chords add at most 2 each.
        let degs = g.adjacency().degrees();
        assert!(degs.iter().all(|&d| (2..=6).contains(&d)), "{degs:?}");
        assert!(g.num_edges() >= 36);
    }

    #[test]
    fn tiny_graphs_do_not_panic() {
        assert_eq!(erdos_renyi("e", 1, 5, 1, 0).build().num_edges(), 1); // just self loop
        assert_eq!(chung_lu("c", 1, 5, 2.5, 1, 0).build().num_edges(), 1);
        assert_eq!(ring_molecule("r", 1, 0, 1, 0).build().num_edges(), 1);
        assert_eq!(erdos_renyi("e", 0, 0, 1, 0).build().num_vertices(), 0);
    }

    #[test]
    fn unrank_pair_is_a_bijection() {
        let n = 7;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = unrank_pair(idx, n);
            assert!(u < v && v < n);
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), 21);
    }
}
