//! Million-node scale generators with streaming CSR construction.
//!
//! The Table IV stand-ins (a few thousand vertices) exercise every dataflow
//! regime, but the summary-driven walk earns its keep on graphs whose `nnz`
//! dwarfs the number of degree classes. This module provides the classic
//! scale-free generators at that size:
//!
//! * [`rmat`] — Graph500-style recursive-matrix graphs (`a=0.57, b=c=0.19,
//!   d=0.05`), with **stateless per-edge generation**: each edge is a pure
//!   function of `(seed, edge index)`, so the edge stream is replayed instead
//!   of stored.
//! * [`chung_lu_scaled`] — the power-law expected-degree model of
//!   [`crate::generators::chung_lu`], lifted to power-of-two scales by
//!   re-running its deterministic O(n + m) sampling walk per pass.
//!
//! Both build the CSR directly in two passes over the edge stream (count →
//! prefix-sum → fill → per-row sort/dedupe), never materialising an edge list:
//! peak memory is the finished CSR plus one `u32` counter per vertex. The
//! result is bit-identical to feeding the same stream through
//! [`GraphBuilder`] with its defaults (undirected mirror for `u != v`, a self
//! loop on every vertex, duplicates collapsed, unit values) — pinned by a
//! differential test below.
//!
//! [`scale_graph`] resolves `"rmat-20"` / `"chung-lu-18"` style names so CLIs
//! and workload specs can address the family next to the Table IV datasets,
//! and [`sample_subgraph`] cuts deterministic induced subgraphs for
//! model-level tests that want realistic degree shapes at test-suite sizes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use omega_matrix::CsrMatrix;

use crate::{Graph, GraphBuilder};

/// Feature width of every [`scale_graph`] workload.
pub const SCALE_FEATURE_DIM: usize = 64;

/// Undirected edges per vertex of every [`scale_graph`] workload.
pub const SCALE_EDGE_FACTOR: usize = 8;

/// SplitMix64 mix — the same finalizer [`Graph::features`] uses.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The `e`-th R-MAT edge of a `2^scale`-vertex graph: a pure function of
/// `(seed, e)`, so both CSR passes regenerate the identical stream.
fn rmat_edge(scale: u32, seed: u64, e: u64) -> (usize, usize) {
    let mut s = splitmix64(seed ^ e.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let (mut u, mut v) = (0usize, 0usize);
    for _ in 0..scale {
        s = splitmix64(s);
        // 53 uniform bits → one quadrant choice per recursion level.
        let r = (s >> 11) as f64 / (1u64 << 53) as f64;
        let (bu, bv) = if r < 0.57 {
            (0, 0)
        } else if r < 0.76 {
            (0, 1)
        } else if r < 0.95 {
            (1, 0)
        } else {
            (1, 1)
        };
        u = (u << 1) | bu;
        v = (v << 1) | bv;
    }
    (u, v)
}

/// Streams the (deterministic, replayable) edge sequence `emit` into a CSR
/// adjacency with [`GraphBuilder`]-default semantics — symmetric mirror for
/// `u != v`, a self loop on every vertex, duplicates collapsed, values `1.0`
/// — without ever materialising the edge list. `emit` is called twice and
/// must produce the same sequence both times.
fn build_streamed(
    name: &str,
    n: usize,
    feature_dim: usize,
    emit: impl Fn(&mut dyn FnMut(usize, usize)),
) -> Graph {
    // Pass 1: per-row slot counts (one slot per row for the self loop).
    let mut counts = vec![1u32; n];
    emit(&mut |u, v| {
        counts[u] += 1;
        if u != v {
            counts[v] += 1;
        }
    });
    let mut slot = vec![0u64; n + 1];
    for (i, &c) in counts.iter().enumerate() {
        slot[i + 1] = slot[i] + c as u64;
    }
    let total = slot[n];
    assert!(total <= u32::MAX as u64, "edge slots overflow u32 CSR indices");
    drop(counts);

    // Pass 2: fill the slots, then sort + dedupe each row in place.
    let mut col_idx = vec![0u32; total as usize];
    let mut cursor: Vec<usize> = slot[..n].iter().map(|&s| s as usize).collect();
    for (v, c) in cursor.iter_mut().enumerate() {
        col_idx[*c] = v as u32;
        *c += 1;
    }
    emit(&mut |u, v| {
        col_idx[cursor[u]] = v as u32;
        cursor[u] += 1;
        if u != v {
            col_idx[cursor[v]] = u as u32;
            cursor[v] += 1;
        }
    });
    drop(cursor);

    let mut row_ptr = vec![0u32; n + 1];
    let mut w = 0usize;
    for r in 0..n {
        let (s, e) = (slot[r] as usize, slot[r + 1] as usize);
        col_idx[s..e].sort_unstable();
        let mut last = None;
        for i in s..e {
            let c = col_idx[i];
            if last != Some(c) {
                col_idx[w] = c;
                w += 1;
                last = Some(c);
            }
        }
        row_ptr[r + 1] = w as u32;
    }
    col_idx.truncate(w);
    let values = vec![1.0; w];
    let csr = CsrMatrix::from_raw_parts(n, n, row_ptr, col_idx, values)
        .expect("streamed CSR satisfies the structural invariants by construction");
    Graph::new(name, csr, feature_dim)
}

/// R-MAT graph over `2^scale` vertices with `edge_factor · 2^scale` generated
/// edges (Graph500 partition probabilities). Deterministic in `seed`; memory
/// is the finished CSR plus one counter per vertex, so `scale = 20` (≈ 1M
/// vertices, ≈ 17M stored non-zeros) builds comfortably in-process.
pub fn rmat(name: &str, scale: u32, edge_factor: usize, feature_dim: usize, seed: u64) -> Graph {
    let n = 1usize << scale;
    let m = (edge_factor * n) as u64;
    build_streamed(name, n, feature_dim, |sink| {
        for e in 0..m {
            let (u, v) = rmat_edge(scale, seed, e);
            sink(u, v);
        }
    })
}

/// [`crate::generators::chung_lu`] at power-of-two scale with streaming CSR
/// construction: same truncated power-law weights, same Miller–Hagberg
/// O(n + m) sampling walk, but the edge stream goes straight into the CSR
/// passes instead of an edge list. Deterministic in `seed`.
pub fn chung_lu_scaled(
    name: &str,
    scale: u32,
    edge_factor: usize,
    gamma: f64,
    feature_dim: usize,
    seed: u64,
) -> Graph {
    let n = 1usize << scale;
    let undirected_edges = edge_factor * n;
    let alpha = 1.0 / (gamma - 1.0);
    let mut weights: Vec<f64> = (0..n).map(|i| ((i + 5) as f64).powf(-alpha)).collect();
    let wsum: f64 = weights.iter().sum();
    let scale_w = (2.0 * undirected_edges as f64) / wsum;
    for w in &mut weights {
        *w *= scale_w;
    }
    let total_w: f64 = weights.iter().sum();
    build_streamed(name, n, feature_dim, |sink| {
        chung_lu_stream(&weights, total_w, seed, sink);
    })
}

/// One deterministic Miller–Hagberg sampling walk over the weight sequence,
/// emitting each sampled undirected edge once. Re-seeding per call replays
/// the identical stream, which is what [`build_streamed`]'s two passes need.
fn chung_lu_stream(weights: &[f64], total_w: f64, seed: u64, sink: &mut dyn FnMut(usize, usize)) {
    let n = weights.len();
    let mut rng = StdRng::seed_from_u64(seed);
    for u in 0..n {
        let mut v = u + 1;
        let mut p = (weights[u] * weights[v.min(n - 1)] / total_w).min(1.0);
        while v < n && p > 0.0 {
            if p < 1.0 {
                let r: f64 = rng.gen_range(0.0f64..1.0).max(f64::MIN_POSITIVE);
                let skip = (r.ln() / (1.0 - p).ln()).floor() as usize;
                v += skip;
            }
            if v >= n {
                break;
            }
            let q = (weights[u] * weights[v] / total_w).min(1.0);
            if rng.gen_range(0.0f64..1.0) < q / p {
                sink(u, v);
            }
            p = q;
            v += 1;
        }
    }
}

/// Resolves a scale-family workload name: `rmat-N` (R-MAT) or `chung-lu-N`
/// (power-law expected-degree, `γ = 2.1`) over `2^N` vertices, edge factor
/// [`SCALE_EDGE_FACTOR`], feature width [`SCALE_FEATURE_DIM`]. `N` is capped
/// at 26 (≈ 67M vertices) to keep a typo from asking for terabytes. Returns
/// `None` for names outside the family, so callers can try the Table IV
/// registry first and fall through here.
pub fn scale_graph(spec: &str, seed: u64) -> Option<Graph> {
    let (kind, scale) = spec.rsplit_once('-')?;
    let scale: u32 = scale.parse().ok()?;
    if !(1..=26).contains(&scale) {
        return None;
    }
    match kind.to_ascii_lowercase().as_str() {
        "rmat" => Some(rmat(spec, scale, SCALE_EDGE_FACTOR, SCALE_FEATURE_DIM, seed)),
        "chung-lu" => {
            Some(chung_lu_scaled(spec, scale, SCALE_EDGE_FACTOR, 2.1, SCALE_FEATURE_DIM, seed))
        }
        _ => None,
    }
}

/// Deterministic induced subgraph on `k` uniformly-sampled vertices: the
/// stored structure (mirrors, self loops) restricted to the sample, with
/// vertices renumbered in ascending original order. Model-level tests use
/// this to shrink a scale-family graph to suite-friendly size while keeping
/// its degree shape.
pub fn sample_subgraph(g: &Graph, k: usize, seed: u64) -> Graph {
    let n = g.num_vertices();
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // Floyd's algorithm: k distinct vertices, O(k) expected.
    let mut chosen = std::collections::HashSet::with_capacity(k);
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut verts: Vec<usize> = chosen.into_iter().collect();
    verts.sort_unstable();
    let index: std::collections::HashMap<usize, usize> =
        verts.iter().enumerate().map(|(i, &v)| (v, i)).collect();
    let mut b = GraphBuilder::new(format!("{}[sub{k}]", g.name), verts.len(), g.feature_dim());
    // The source graph already materialises mirrors and self loops; copy its
    // stored pattern verbatim instead of re-running the preprocessing.
    b.undirected(false).self_loops(false);
    let a = g.adjacency();
    for (new_u, &u) in verts.iter().enumerate() {
        for &c in a.row_cols(u) {
            if let Some(&new_v) = index.get(&(c as usize)) {
                b.edge(new_u, new_v);
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The streamed build must match `GraphBuilder` fed the same edge stream.
    #[test]
    fn streamed_build_matches_graph_builder() {
        for seed in [0, 7, 91] {
            let scale = 8u32;
            let n = 1usize << scale;
            let m = (SCALE_EDGE_FACTOR * n) as u64;
            let streamed = rmat("r", scale, SCALE_EDGE_FACTOR, 16, seed);
            let mut b = GraphBuilder::new("r", n, 16);
            for e in 0..m {
                let (u, v) = rmat_edge(scale, seed, e);
                b.edge(u, v);
            }
            let reference = b.build();
            assert_eq!(streamed.adjacency(), reference.adjacency(), "seed {seed}");
        }
    }

    #[test]
    fn chung_lu_scaled_matches_graph_builder() {
        let (scale, ef, gamma, seed) = (9u32, 4usize, 2.1, 3u64);
        let streamed = chung_lu_scaled("cl", scale, ef, gamma, 8, seed);
        // Feed the identical replayed stream through GraphBuilder.
        let n = 1usize << scale;
        let alpha = 1.0 / (gamma - 1.0);
        let mut weights: Vec<f64> = (0..n).map(|i| ((i + 5) as f64).powf(-alpha)).collect();
        let wsum: f64 = weights.iter().sum();
        let scale_w = (2.0 * (ef * n) as f64) / wsum;
        for w in &mut weights {
            *w *= scale_w;
        }
        let total_w: f64 = weights.iter().sum();
        let mut b = GraphBuilder::new("cl", n, 8);
        chung_lu_stream(&weights, total_w, seed, &mut |u, v| {
            b.edge(u, v);
        });
        assert_eq!(streamed.adjacency(), b.build().adjacency());
    }

    #[test]
    fn rmat_is_deterministic_and_seed_sensitive() {
        let a = rmat("r", 7, 8, 8, 1);
        let b = rmat("r", 7, 8, 8, 1);
        let c = rmat("r", 7, 8, 8, 2);
        assert_eq!(a.adjacency(), b.adjacency());
        assert_ne!(a.adjacency().col_idx(), c.adjacency().col_idx());
    }

    #[test]
    fn rmat_is_skewed_toward_low_ids() {
        // Quadrant probabilities concentrate mass on low vertex ids: vertex 0
        // must be a hub far above the mean degree.
        let g = rmat("r", 10, 8, 8, 5);
        let mean = g.adjacency().mean_degree();
        let hub = g.degree(0) as f64;
        assert!(hub > 8.0 * mean, "hub {hub} vs mean {mean}");
    }

    #[test]
    fn scale_graph_resolves_the_family() {
        let g = scale_graph("rmat-6", 11).expect("rmat family");
        assert_eq!(g.num_vertices(), 64);
        assert_eq!(g.feature_dim(), SCALE_FEATURE_DIM);
        let cl = scale_graph("chung-lu-6", 11).expect("chung-lu family");
        assert_eq!(cl.num_vertices(), 64);
        assert!(scale_graph("rmat-99", 11).is_none(), "scale cap");
        assert!(scale_graph("rmat-x", 11).is_none());
        assert!(scale_graph("cora", 11).is_none(), "registry names are not ours");
    }

    #[test]
    fn sample_subgraph_preserves_stored_structure() {
        let g = rmat("r", 8, 4, 8, 9);
        let sub = sample_subgraph(&g, 50, 13);
        assert_eq!(sub.num_vertices(), 50);
        assert_eq!(sub.feature_dim(), g.feature_dim());
        // Every sampled vertex keeps its self loop (the source graph has one
        // on every vertex), so no degree is zero.
        assert!((0..50).all(|v| sub.degree(v) >= 1));
        // Determinism.
        let again = sample_subgraph(&g, 50, 13);
        assert_eq!(sub.adjacency(), again.adjacency());
    }
}
