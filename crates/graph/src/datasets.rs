//! Table IV dataset registry with synthetic instantiation.
//!
//! Each [`DatasetSpec`] records the published statistics of one of the paper's seven
//! evaluation datasets plus the generator shape that reproduces its degree regime.
//! [`DatasetSpec::generate`] materialises a deterministic synthetic stand-in (see
//! `DESIGN.md` §2 for why matching V/E/F and degree skew suffices for the cost
//! model).

use serde::Serialize;

use crate::generators::{chung_lu, ego_network, ring_molecule};
use crate::{batch_graphs, Category, Graph, GraphStats};

/// How a spec's `avg_edges` number is to be read.
///
/// The TU-Dortmund collection reports *undirected* edge counts, while the
/// Planetoid citation networks (Citeseer, Cora) are conventionally reported as
/// *directed* adjacency non-zeros — the paper copies both conventions into
/// Table IV, so we keep the distinction explicit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum EdgeConvention {
    /// `avg_edges` counts each undirected edge once.
    Undirected,
    /// `avg_edges` counts directed non-zeros (≈ 2× the undirected count).
    Directed,
}

/// Degree-distribution shape used for generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
enum Shape {
    /// Near-regular molecule: ring plus chords.
    Molecule,
    /// Dense ego network (collaboration sets): a guaranteed hub plus uniform
    /// connectivity among the alters.
    UniformDense,
    /// Power-law hubs with exponent `gamma`.
    PowerLaw {
        /// Power-law exponent (≈2 → heavy hubs).
        gamma: f64,
    },
}

/// Specification of one evaluation dataset (one row of Table IV).
#[derive(Debug, Clone, Serialize)]
pub struct DatasetSpec {
    /// Dataset name as printed in the paper.
    pub name: &'static str,
    /// Number of graphs in the full collection (informational; Table IV column 2).
    pub population: usize,
    /// Average vertices per graph.
    pub avg_nodes: f64,
    /// Average edges per graph, read per [`EdgeConvention`].
    pub avg_edges: f64,
    /// Convention for `avg_edges`.
    pub edge_convention: EdgeConvention,
    /// Input feature width `F` (`*` entries in the paper are indicator vectors; only
    /// the width matters here).
    pub features: usize,
    /// Paper-assigned workload category.
    pub category: Category,
    /// Graphs per evaluated batch (Section V-A2: 64, or 32 for Reddit-bin; 1 for
    /// node-classification sets).
    pub batch_size: usize,
    shape: Shape,
}

impl DatasetSpec {
    /// Mutag: 188 molecular graphs, 17.93 nodes / 19.79 edges avg, 28 features (LEF).
    pub fn mutag() -> Self {
        DatasetSpec {
            name: "Mutag",
            population: 188,
            avg_nodes: 17.93,
            avg_edges: 19.79,
            edge_convention: EdgeConvention::Undirected,
            features: 28,
            category: Category::LEF,
            batch_size: 64,
            shape: Shape::Molecule,
        }
    }

    /// Proteins: 1113 protein graphs, 39.06 nodes / 72.82 edges avg, 29 features (LEF).
    pub fn proteins() -> Self {
        DatasetSpec {
            name: "Proteins",
            population: 1113,
            avg_nodes: 39.06,
            avg_edges: 72.82,
            edge_convention: EdgeConvention::Undirected,
            features: 29,
            category: Category::LEF,
            batch_size: 64,
            shape: Shape::Molecule,
        }
    }

    /// Imdb-bin: 1000 ego networks, 19.77 nodes / 96.53 edges avg, 136 features (HE).
    pub fn imdb_bin() -> Self {
        DatasetSpec {
            name: "Imdb-bin",
            population: 1000,
            avg_nodes: 19.77,
            avg_edges: 96.53,
            edge_convention: EdgeConvention::Undirected,
            features: 136,
            category: Category::HE,
            batch_size: 64,
            shape: Shape::UniformDense,
        }
    }

    /// Collab: 5000 collaboration ego networks, 74.49 nodes / 2457.78 edges avg,
    /// 492 features (HE).
    pub fn collab() -> Self {
        DatasetSpec {
            name: "Collab",
            population: 5000,
            avg_nodes: 74.49,
            avg_edges: 2457.78,
            edge_convention: EdgeConvention::Undirected,
            features: 492,
            category: Category::HE,
            batch_size: 64,
            shape: Shape::UniformDense,
        }
    }

    /// Reddit-bin: 2000 discussion graphs, 429.63 nodes / 497.75 edges avg,
    /// 3782 features (HF). Batched 32 per Section V-A2.
    pub fn reddit_bin() -> Self {
        DatasetSpec {
            name: "Reddit-bin",
            population: 2000,
            avg_nodes: 429.63,
            avg_edges: 497.75,
            edge_convention: EdgeConvention::Undirected,
            features: 3782,
            category: Category::HF,
            batch_size: 32,
            shape: Shape::PowerLaw { gamma: 2.0 },
        }
    }

    /// Citeseer: one citation network, 3327 nodes / 9464 directed non-zeros,
    /// 3703 features (HF).
    pub fn citeseer() -> Self {
        DatasetSpec {
            name: "Citeseer",
            population: 1,
            avg_nodes: 3327.0,
            avg_edges: 9464.0,
            edge_convention: EdgeConvention::Directed,
            features: 3703,
            category: Category::HF,
            batch_size: 1,
            shape: Shape::PowerLaw { gamma: 2.1 },
        }
    }

    /// Cora: one citation network, 2708 nodes / 10858 directed non-zeros,
    /// 1433 features (HF).
    pub fn cora() -> Self {
        DatasetSpec {
            name: "Cora",
            population: 1,
            avg_nodes: 2708.0,
            avg_edges: 10858.0,
            edge_convention: EdgeConvention::Directed,
            features: 1433,
            category: Category::HF,
            batch_size: 1,
            shape: Shape::PowerLaw { gamma: 2.1 },
        }
    }

    /// All seven specs in the paper's Table IV order.
    pub fn all() -> Vec<DatasetSpec> {
        vec![
            Self::mutag(),
            Self::proteins(),
            Self::imdb_bin(),
            Self::collab(),
            Self::reddit_bin(),
            Self::citeseer(),
            Self::cora(),
        ]
    }

    /// Looks a spec up by (case-insensitive) name.
    pub fn by_name(name: &str) -> Option<DatasetSpec> {
        Self::all().into_iter().find(|s| s.name.eq_ignore_ascii_case(name))
    }

    /// Undirected edge target implied by `avg_edges` under the convention.
    fn undirected_edge_target(&self) -> f64 {
        match self.edge_convention {
            EdgeConvention::Undirected => self.avg_edges,
            EdgeConvention::Directed => self.avg_edges / 2.0,
        }
    }

    /// Generates the batched synthetic workload for this spec.
    ///
    /// Multi-graph sets get `batch_size` graphs with node counts spread ±35% around
    /// the average (per-graph seeds derived from `seed`), block-diagonally batched;
    /// single-graph sets produce the one graph. Deterministic in `seed`.
    pub fn generate(&self, seed: u64) -> Dataset {
        let graphs: Vec<Graph> = (0..self.batch_size)
            .map(|i| self.generate_member(seed, i))
            .collect();
        let graph = if graphs.len() == 1 {
            graphs.into_iter().next().expect("one graph")
        } else {
            batch_graphs(self.name, &graphs)
        };
        Dataset { spec: self.clone(), graph }
    }

    /// Generates the `i`-th member graph of a batch.
    fn generate_member(&self, seed: u64, i: usize) -> Graph {
        let member_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64 + 1);
        // Deterministic ±35% node-count spread: member graphs of TU datasets vary in
        // size; spreading exercises the batching path without another RNG stream.
        let jitter = 0.65 + 0.7 * fract_hash(member_seed);
        let scale = if self.batch_size == 1 { 1.0 } else { jitter };
        let n = ((self.avg_nodes * scale).round() as usize).max(3);
        let e = (self.undirected_edge_target() * scale).round() as usize;
        let name = format!("{}[{}]", self.name, i);
        let builder = match self.shape {
            Shape::Molecule => {
                let chords = e.saturating_sub(n);
                ring_molecule(&name, n, chords, self.features, member_seed)
            }
            Shape::UniformDense => ego_network(&name, n, e, self.features, member_seed),
            Shape::PowerLaw { gamma } => chung_lu(&name, n, e, gamma, self.features, member_seed),
        };
        builder.build()
    }
}

/// Hash a seed to a deterministic fraction in `[0, 1)`.
fn fract_hash(x: u64) -> f64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A materialised dataset: the batched graph plus its originating spec.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The Table IV row this dataset instantiates.
    pub spec: DatasetSpec,
    /// The (batched) graph workload.
    pub graph: Graph,
}

impl Dataset {
    /// Statistics of the batched graph.
    pub fn stats(&self) -> GraphStats {
        GraphStats::of(&self.graph)
    }

    /// Dataset name.
    pub fn name(&self) -> &str {
        self.spec.name
    }
}

/// Generates the full seven-dataset evaluation suite with one base seed.
pub fn suite(seed: u64) -> Vec<Dataset> {
    DatasetSpec::all().into_iter().map(|s| s.generate(seed)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table_iv() {
        let all = DatasetSpec::all();
        assert_eq!(all.len(), 7);
        let names: Vec<_> = all.iter().map(|s| s.name).collect();
        assert_eq!(names, ["Mutag", "Proteins", "Imdb-bin", "Collab", "Reddit-bin", "Citeseer", "Cora"]);
        assert_eq!(DatasetSpec::mutag().features, 28);
        assert_eq!(DatasetSpec::reddit_bin().batch_size, 32);
        assert_eq!(DatasetSpec::citeseer().batch_size, 1);
        assert_eq!(DatasetSpec::collab().category, Category::HE);
        assert_eq!(DatasetSpec::cora().category, Category::HF);
        assert_eq!(DatasetSpec::proteins().category, Category::LEF);
    }

    #[test]
    fn by_name_is_case_insensitive() {
        assert!(DatasetSpec::by_name("citeseer").is_some());
        assert!(DatasetSpec::by_name("CORA").is_some());
        assert!(DatasetSpec::by_name("nope").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = DatasetSpec::mutag().generate(42);
        let b = DatasetSpec::mutag().generate(42);
        assert_eq!(a.graph.adjacency().col_idx(), b.graph.adjacency().col_idx());
        let c = DatasetSpec::mutag().generate(43);
        assert_ne!(a.graph.adjacency().col_idx(), c.graph.adjacency().col_idx());
    }

    #[test]
    fn batch_sizes_are_respected() {
        let mutag = DatasetSpec::mutag().generate(1);
        // 64 graphs of ~18 nodes: between 64*3 and 64*18*1.35 vertices.
        let v = mutag.graph.num_vertices();
        assert!((192..=1600).contains(&v), "v = {v}");
        let citeseer = DatasetSpec::citeseer().generate(1);
        assert_eq!(citeseer.graph.num_vertices(), 3327);
    }

    #[test]
    fn generated_stats_land_near_spec() {
        let cora = DatasetSpec::cora().generate(7);
        let s = cora.stats();
        assert_eq!(s.vertices, 2708);
        assert_eq!(s.features, 1433);
        // Directed non-zeros (excl. self loops) should be within 40% of 10858.
        let nnz_no_loops = s.edges - s.vertices;
        assert!(
            (6500..=15300).contains(&nnz_no_loops),
            "nnz_no_loops = {nnz_no_loops}"
        );
        // Power-law graphs have hubs.
        assert!(s.degree_skew() > 5.0, "skew = {}", s.degree_skew());
        assert_eq!(s.category(), Category::HF);
    }

    #[test]
    fn collab_is_dense_he() {
        let collab = DatasetSpec::collab().generate(3);
        let s = collab.stats();
        assert!(s.mean_degree > 20.0, "mean degree = {}", s.mean_degree);
        assert_eq!(s.category(), Category::HE);
    }

    #[test]
    fn molecule_sets_are_lef() {
        for spec in [DatasetSpec::mutag(), DatasetSpec::proteins()] {
            let d = spec.generate(5);
            let s = d.stats();
            assert!(s.mean_degree < 8.0);
            assert_eq!(s.category(), Category::LEF, "{}", spec.name);
        }
    }

    #[test]
    fn suite_generates_all_seven() {
        let suite = suite(11);
        assert_eq!(suite.len(), 7);
        assert_eq!(suite[0].name(), "Mutag");
        assert_eq!(suite[6].name(), "Cora");
    }
}
