//! Graph statistics and the paper's HE / HF / LEF workload categorisation.

use serde::Serialize;

use crate::Graph;

/// The paper's three workload categories (Table IV):
///
/// * `HE` — high edges/vertex, relatively low features/vertex (Imdb-bin, Collab);
/// * `HF` — high features/vertex, relatively low edges/vertex (Reddit-bin,
///   Citeseer, Cora);
/// * `LEF` — low edges/vertex **and** low features (Mutag, Proteins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum Category {
    /// High edges per vertex.
    HE,
    /// High features per vertex.
    HF,
    /// Low edges and low features.
    LEF,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Category::HE => "HE",
            Category::HF => "HF",
            Category::LEF => "LEF",
        })
    }
}

/// Summary statistics for a (possibly batched) graph workload.
#[derive(Debug, Clone, Serialize)]
pub struct GraphStats {
    /// Vertices in the (batched) graph.
    pub vertices: usize,
    /// Stored adjacency non-zeros (directed edge slots, incl. self loops).
    pub edges: usize,
    /// Input feature width `F`.
    pub features: usize,
    /// Mean stored degree.
    pub mean_degree: f64,
    /// Maximum stored degree — the "evil row" driver.
    pub max_degree: usize,
    /// Adjacency sparsity in `[0, 1]`.
    pub sparsity: f64,
}

impl GraphStats {
    /// Computes statistics for a graph in one pass over the row-pointer
    /// array: `nnz` and the mean/sparsity are O(1) on CSR, and the max degree
    /// falls out of the same `V`-length sweep — no per-row re-derivation, so
    /// stats on a million-vertex scale graph cost O(V), not O(nnz).
    pub fn of(graph: &Graph) -> Self {
        let a = graph.adjacency();
        let max_degree = a
            .row_ptr()
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .max()
            .unwrap_or(0);
        GraphStats {
            vertices: graph.num_vertices(),
            edges: graph.num_edges(),
            features: graph.feature_dim(),
            mean_degree: a.mean_degree(),
            max_degree,
            sparsity: a.sparsity(),
        }
    }

    /// Classifies the workload with the paper's informal rule: dense rows → HE,
    /// wide features → HF, otherwise LEF.
    ///
    /// Thresholds follow Table IV's split: HE sets have mean degree ≥ 8 (Imdb ≈ 10,
    /// Collab ≈ 66); HF sets have F ≥ 1000 (Reddit 3782, Citeseer 3703, Cora 1433);
    /// the molecular sets fall through to LEF.
    pub fn category(&self) -> Category {
        if self.mean_degree >= 8.0 {
            Category::HE
        } else if self.features >= 1000 {
            Category::HF
        } else {
            Category::LEF
        }
    }

    /// Degree skew: max degree over mean degree. Values ≫ 1 indicate hub vertices.
    pub fn degree_skew(&self) -> f64 {
        if self.mean_degree > 0.0 {
            self.max_degree as f64 / self.mean_degree
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn star(n: usize, f: usize) -> Graph {
        let mut b = GraphBuilder::new("star", n, f);
        for v in 1..n {
            b.edge(0, v);
        }
        b.build()
    }

    #[test]
    fn stats_of_star() {
        let g = star(10, 16);
        let s = GraphStats::of(&g);
        assert_eq!(s.vertices, 10);
        // 9 undirected spokes → 18 directed + 10 self loops.
        assert_eq!(s.edges, 28);
        assert_eq!(s.max_degree, 10); // hub: 9 spokes + self loop
        assert!((s.mean_degree - 2.8).abs() < 1e-9);
        assert!(s.degree_skew() > 3.0);
        assert!(s.sparsity > 0.5);
    }

    #[test]
    fn categorisation_thresholds() {
        let lef = GraphStats { vertices: 100, edges: 300, features: 28, mean_degree: 3.0, max_degree: 5, sparsity: 0.97 };
        assert_eq!(lef.category(), Category::LEF);
        let he = GraphStats { mean_degree: 40.0, ..lef.clone() };
        assert_eq!(he.category(), Category::HE);
        let hf = GraphStats { features: 3703, ..lef.clone() };
        assert_eq!(hf.category(), Category::HF);
        // HE takes precedence over HF (dense + wide is still compute-bound on edges).
        let both = GraphStats { mean_degree: 40.0, features: 3703, ..lef };
        assert_eq!(both.category(), Category::HE);
    }

    #[test]
    fn category_display() {
        assert_eq!(Category::HE.to_string(), "HE");
        assert_eq!(Category::HF.to_string(), "HF");
        assert_eq!(Category::LEF.to_string(), "LEF");
    }

    #[test]
    fn zero_degree_skew_is_zero() {
        let s = GraphStats { vertices: 0, edges: 0, features: 1, mean_degree: 0.0, max_degree: 0, sparsity: 1.0 };
        assert_eq!(s.degree_skew(), 0.0);
    }
}
