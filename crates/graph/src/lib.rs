//! Graph workload substrate for the OMEGA framework.
//!
//! The paper evaluates GNN dataflows on seven datasets (Table IV): five
//! graph-classification sets from the TU-Dortmund benchmark collection (Mutag,
//! Proteins, Imdb-bin, Collab, Reddit-bin) and two node-classification citation
//! networks (Citeseer, Cora). Those datasets are not redistributable here, so this
//! crate provides **seeded synthetic generators** calibrated to each dataset's
//! published statistics — node/edge counts, feature width, degree-distribution
//! shape — which is all the cost model consumes (see `DESIGN.md` §2 for the
//! substitution argument).
//!
//! Provided pieces:
//!
//! * [`Graph`] — a vertex set with CSR adjacency (optionally normalised) plus a
//!   feature width; the unit the accelerator simulator consumes.
//! * [`GraphBuilder`] — edge-list construction with symmetrisation, self loops, and
//!   GCN normalisation.
//! * [`generators`] — Erdős–Rényi, Chung-Lu power-law, and ring-molecule generators
//!   covering the degree-shape regimes of Table IV.
//! * [`scale`] — R-MAT and scaled Chung-Lu generators with streaming CSR
//!   construction, reaching million-vertex graphs (`rmat-20` and beyond) via
//!   the [`scale_graph`] name resolver.
//! * [`DatasetSpec`] / [`Dataset`] — the Table IV registry and batched instantiation
//!   (64 graphs per batch; 32 for Reddit-bin, matching Section V-A2).
//! * [`GraphStats`] / [`Category`] — degree statistics and the paper's HE/HF/LEF
//!   workload categorisation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod builder;
mod datasets;
pub mod generators;
mod graph;
pub mod scale;
mod stats;

pub use batch::batch_graphs;
pub use builder::GraphBuilder;
pub use datasets::{suite, Dataset, DatasetSpec, EdgeConvention};
pub use graph::Graph;
pub use scale::scale_graph;
pub use stats::{Category, GraphStats};
