//! Property tests for the graph substrate: generators, batching, invariants.

use proptest::prelude::*;

use omega_graph::generators::{chung_lu, ego_network, erdos_renyi, ring_molecule};
use omega_graph::scale::{sample_subgraph, SCALE_EDGE_FACTOR};
use omega_graph::{batch_graphs, scale_graph, DatasetSpec, Graph, GraphBuilder, GraphStats};

fn structural_invariants(g: &Graph) {
    let a = g.adjacency();
    // Square, sorted-unique rows, symmetric (builders default to undirected).
    assert_eq!(a.rows(), a.cols());
    for r in 0..a.rows() {
        let cols = a.row_cols(r);
        assert!(cols.windows(2).all(|w| w[0] < w[1]), "row {r} sorted/unique");
        for &c in cols {
            assert!(
                a.row_cols(c as usize).contains(&(r as u32)),
                "edge ({r},{c}) missing its mirror"
            );
        }
        // Self loop present (builders default to self_loops(true)).
        assert!(cols.contains(&(r as u32)), "self loop at {r}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn erdos_renyi_invariants(n in 2usize..60, edges in 0usize..300, seed in 0u64..64) {
        let g = erdos_renyi("er", n, edges, 4, seed).build();
        structural_invariants(&g);
        // nnz = 2 * min(edges, max) + n self loops.
        let max_edges = n * (n - 1) / 2;
        prop_assert_eq!(g.num_edges(), 2 * edges.min(max_edges) + n);
    }

    #[test]
    fn chung_lu_invariants(n in 2usize..200, edges in 1usize..500, seed in 0u64..64) {
        let g = chung_lu("cl", n, edges, 2.2, 4, seed).build();
        structural_invariants(&g);
        prop_assert!(g.num_edges() >= n); // at least the self loops
    }

    #[test]
    fn ego_network_has_a_hub(n in 3usize..80, edges in 0usize..400, seed in 0u64..64) {
        let g = ego_network("ego", n, edges, 4, seed).build();
        structural_invariants(&g);
        // The ego (vertex 0) is connected to everyone: degree = n-1 spokes + self loop.
        prop_assert_eq!(g.degree(0), n);
        prop_assert_eq!(g.adjacency().max_degree(), n);
    }

    #[test]
    fn ring_molecule_is_connected_and_low_degree(n in 3usize..60, chords in 0usize..10, seed in 0u64..64) {
        let g = ring_molecule("mol", n, chords, 4, seed).build();
        structural_invariants(&g);
        // Ring guarantees degree >= 3 (two neighbours + self loop).
        prop_assert!(g.adjacency().degrees().iter().all(|&d| d >= 3));
        prop_assert!(g.adjacency().max_degree() <= 3 + 2 * chords);
    }

    #[test]
    fn batching_preserves_counts(sizes in proptest::collection::vec(2usize..12, 1..6), seed in 0u64..32) {
        let graphs: Vec<Graph> = sizes
            .iter()
            .enumerate()
            .map(|(i, &n)| erdos_renyi(&format!("g{i}"), n, n, 4, seed + i as u64).build())
            .collect();
        let total_v: usize = graphs.iter().map(|g| g.num_vertices()).sum();
        let total_e: usize = graphs.iter().map(|g| g.num_edges()).sum();
        let batched = batch_graphs("batch", &graphs);
        prop_assert_eq!(batched.num_vertices(), total_v);
        prop_assert_eq!(batched.num_edges(), total_e);
        structural_invariants(&batched);
        // Block-diagonal: no edge crosses a graph boundary.
        let mut offset = 0;
        for g in &graphs {
            let hi = offset + g.num_vertices();
            for r in offset..hi {
                for &c in batched.adjacency().row_cols(r) {
                    prop_assert!((offset..hi).contains(&(c as usize)), "cross-block edge");
                }
            }
            offset = hi;
        }
    }

    #[test]
    fn dataset_generation_is_seed_deterministic(spec_idx in 0usize..7, seed in 0u64..8) {
        let spec = &DatasetSpec::all()[spec_idx];
        // Only the small sets in the hot proptest loop.
        if spec.avg_nodes > 100.0 {
            return Ok(());
        }
        let a = spec.generate(seed);
        let b = spec.generate(seed);
        prop_assert_eq!(a.graph.num_vertices(), b.graph.num_vertices());
        prop_assert_eq!(a.graph.adjacency().col_idx(), b.graph.adjacency().col_idx());
        let s = GraphStats::of(&a.graph);
        prop_assert_eq!(s.category(), spec.category);
    }

    #[test]
    fn rmat_scale_family_invariants(scale in 1u32..9, seed in 0u64..64) {
        let g = scale_graph(&format!("rmat-{scale}"), seed).expect("in-range scale resolves");
        structural_invariants(&g);
        let n = 1usize << scale;
        prop_assert_eq!(g.num_vertices(), n);
        // Self loops put a floor under nnz; mirrored R-MAT edges (minus
        // collapsed duplicates and self-hits) cap it.
        prop_assert!(g.num_edges() >= n);
        prop_assert!(g.num_edges() <= n + 2 * SCALE_EDGE_FACTOR * n);
        // The streamed CSR and the stats sweep agree on the degree facts.
        let s = GraphStats::of(&g);
        prop_assert_eq!(s.edges, g.num_edges());
        prop_assert_eq!(s.max_degree, g.adjacency().max_degree());
        prop_assert!(s.max_degree >= 1);
        // Determinism: the same spec + seed streams the same graph.
        let again = scale_graph(&format!("rmat-{scale}"), seed).unwrap();
        prop_assert_eq!(g.adjacency().row_ptr(), again.adjacency().row_ptr());
        prop_assert_eq!(g.adjacency().col_idx(), again.adjacency().col_idx());
    }

    #[test]
    fn chung_lu_scale_family_invariants(scale in 1u32..9, seed in 0u64..64) {
        let g = scale_graph(&format!("chung-lu-{scale}"), seed).expect("in-range scale resolves");
        structural_invariants(&g);
        let n = 1usize << scale;
        prop_assert_eq!(g.num_vertices(), n);
        prop_assert!(g.num_edges() >= n);
        prop_assert!(g.num_edges() <= n + 2 * SCALE_EDGE_FACTOR * n);
        let again = scale_graph(&format!("chung-lu-{scale}"), seed).unwrap();
        prop_assert_eq!(g.adjacency().col_idx(), again.adjacency().col_idx());
    }

    #[test]
    fn sampled_subgraphs_preserve_structure(scale in 3u32..9, k in 1usize..48, seed in 0u64..32) {
        let g = scale_graph(&format!("rmat-{scale}"), seed).unwrap();
        let k = k.min(g.num_vertices());
        let sub = sample_subgraph(&g, k, seed ^ 0x9e37);
        // An induced subgraph of a symmetric, self-looped graph is itself
        // symmetric and self-looped — the copy keeps the pattern verbatim.
        structural_invariants(&sub);
        prop_assert_eq!(sub.num_vertices(), k);
        prop_assert_eq!(sub.feature_dim(), g.feature_dim());
        prop_assert!(sub.num_edges() <= g.num_edges());
        prop_assert!(sub.adjacency().max_degree() <= g.adjacency().max_degree());
    }

    #[test]
    fn gcn_normalisation_bounds_spectral_rows(n in 2usize..30, edges in 0usize..100, seed in 0u64..32) {
        let base = erdos_renyi("norm", n, edges, 2, seed);
        let edge_list: Vec<(usize, usize)> = {
            let g = base.build();
            let a = g.adjacency();
            (0..a.rows())
                .flat_map(|r| {
                    a.row_cols(r).iter().map(move |&c| (r, c as usize)).collect::<Vec<_>>()
                })
                .filter(|&(r, c)| r < c)
                .collect()
        };
        let mut b = GraphBuilder::new("norm", n, 2);
        b.normalise(true).edges(edge_list);
        let g = b.build();
        // Symmetric normalisation keeps every entry in (0, 1].
        let a = g.adjacency();
        for r in 0..a.rows() {
            for (_, v) in a.row_iter(r) {
                prop_assert!(v > 0.0 && v <= 1.0, "value {v}");
            }
        }
    }
}
