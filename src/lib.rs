//! # OMEGA — GNN dataflow design-space exploration on spatial accelerators
//!
//! Facade crate re-exporting the whole workspace, so examples and downstream users
//! can depend on a single crate:
//!
//! ```
//! use omega_gnn::prelude::*;
//!
//! // A synthetic stand-in for the Citeseer citation network (Table IV).
//! let dataset = DatasetSpec::mutag().generate(42);
//! let workload = GnnWorkload::gcn_layer(&dataset, 16);
//!
//! // The paper's accelerator: 512 PEs, 64 B RFs, stall-free NoCs.
//! let hw = AccelConfig::paper_default();
//!
//! // Table V's SP2 dataflow, concretised for this workload.
//! let preset = Preset::by_name("SP2").unwrap();
//! let ctx = workload.tile_context(preset.pattern.phase_order);
//! let dataflow = preset.concretize(&ctx, hw.num_pes, hw.num_pes);
//!
//! let report = evaluate(&workload, &dataflow, &hw).unwrap();
//! assert!(report.total_cycles > 0);
//! println!("{dataflow}: {} cycles, {:.3} uJ", report.total_cycles, report.energy.total_uj());
//! ```
//!
//! See `README.md` for the build/run instructions and the per-crate system
//! inventory, and `DESIGN.md` for the architecture — the crate map, the three
//! phase engines (GEMM / SpMM / SDDMM), the inter-phase cost model, and the
//! DSE stack. The `repro` binary (`cargo run --release --bin repro`)
//! regenerates every table and figure of the paper.

pub use omega_accel as accel;
pub use omega_core as core;
pub use omega_dataflow as dataflow;
pub use omega_graph as graph;
pub use omega_matrix as matrix;

/// Common imports for examples and quick experimentation.
pub mod prelude {
    pub use omega_accel::{AccelConfig, EnergyModel, OperandClass};
    pub use omega_core::dse::{self, DseCache, DseOptions};
    pub use omega_core::mapper::{self, Objective};
    pub use omega_core::{evaluate, AttentionSpec, CostReport, GnnWorkload, PhaseKind};
    pub use omega_dataflow::presets::{self, Preset};
    pub use omega_dataflow::{GnnDataflow, GnnDataflowPattern, InterPhase, PhaseOrder};
    pub use omega_graph::{DatasetSpec, Graph, GraphBuilder};
    pub use omega_matrix::{ops, CsrMatrix, DenseMatrix};
}
