//! Vendored minimal stand-in for `criterion` (no crates.io in this build
//! environment; see `third_party/README.md`).
//!
//! `cargo bench` with this stub times each benchmark over a small fixed number
//! of iterations and prints mean wall-clock time per iteration — no warmup,
//! outlier analysis, or HTML reports. The API surface matches what the
//! workspace's benches call: `benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `iter`, `finish`, and
//! the `criterion_group!`/`criterion_main!` macros.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _parent: self, name: name.into(), sample_size: 10 }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one("", id, 10, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&self.name, id, self.sample_size, f);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&self.name, &id.0, self.sample_size, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, id: &str, samples: usize, mut f: F) {
    let mut b = Bencher { iters: samples as u64, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = if b.iters > 0 { b.elapsed / (b.iters as u32) } else { Duration::ZERO };
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    println!("bench {label:<40} {per_iter:>12.2?}/iter ({} iters)", b.iters);
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
