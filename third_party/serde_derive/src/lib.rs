//! Minimal `#[derive(Serialize)]` for the vendored `serde` stand-in.
//!
//! Hand-rolled token walking (no `syn`/`quote` — the build is offline). Supports
//! exactly the shapes this workspace uses: non-generic structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like. Generic types are rejected with a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match expand(input) {
        Ok(src) => src.parse().expect("serde_derive: generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

fn expand(input: TokenStream) -> Result<String, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id))
            if id.to_string() == "struct" || id.to_string() == "enum" =>
        {
            id.to_string()
        }
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored stub): generic type `{name}` is not supported"
        ));
    }

    let body = if kind == "struct" {
        match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = named_fields(g);
                let pairs: Vec<String> = fields
                    .iter()
                    .map(|f| {
                        format!(
                            "(::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_content(&self.{f}))"
                        )
                    })
                    .collect();
                format!("::serde::Content::Map(vec![{}])", pairs.join(", "))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = tuple_arity(g);
                match n {
                    0 => "::serde::Content::Seq(vec![])".to_string(),
                    // Newtype structs serialize transparently, as in real serde.
                    1 => "::serde::Serialize::to_content(&self.0)".to_string(),
                    _ => {
                        let items: Vec<String> = (0..n)
                            .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                            .collect();
                        format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                    }
                }
            }
            _ => "::serde::Content::Null".to_string(), // unit struct
        }
    } else {
        let g = match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.clone(),
            other => return Err(format!("serde_derive: expected enum body, got {other:?}")),
        };
        let mut arms = Vec::new();
        for v in variants(&g) {
            arms.push(match v {
                Variant::Unit(vn) => format!(
                    "{name}::{vn} => ::serde::Content::Str(::std::string::String::from({vn:?})),"
                ),
                Variant::Tuple(vn, n) => {
                    let binds: Vec<String> = (0..n).map(|k| format!("__f{k}")).collect();
                    let inner = if n == 1 {
                        "::serde::Serialize::to_content(__f0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                    };
                    format!(
                        "{name}::{vn}({}) => ::serde::Content::Map(vec![\
                         (::std::string::String::from({vn:?}), {inner})]),",
                        binds.join(", ")
                    )
                }
                Variant::Struct(vn, fields) => {
                    let pairs: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(::std::string::String::from({f:?}), \
                                 ::serde::Serialize::to_content({f}))"
                            )
                        })
                        .collect();
                    format!(
                        "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![\
                         (::std::string::String::from({vn:?}), \
                         ::serde::Content::Map(vec![{}]))]),",
                        fields.join(", "),
                        pairs.join(", ")
                    )
                }
            });
        }
        format!("match self {{ {} }}", arms.join(" "))
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    ))
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances `i` to just past the next `,` that sits outside any `<...>` nesting
/// (parens/brackets/braces are opaque `Group`s, so only angles need counting).
fn skip_past_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Ident(id)) => out.push(id.to_string()),
            _ => break,
        }
        i += 1;
        skip_past_comma(&toks, &mut i);
    }
    out
}

fn tuple_arity(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    for (k, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // A trailing comma does not add a field.
                ',' if angle == 0 && k + 1 < toks.len() => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                out.push(Variant::Tuple(name, tuple_arity(vg)));
                i += 1;
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                out.push(Variant::Struct(name, named_fields(vg)));
                i += 1;
            }
            _ => out.push(Variant::Unit(name)),
        }
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        skip_past_comma(&toks, &mut i);
    }
    out
}
