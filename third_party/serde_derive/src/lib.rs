//! Minimal `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored
//! `serde` stand-in.
//!
//! Hand-rolled token walking (no `syn`/`quote` — the build is offline). Supports
//! exactly the shapes this workspace uses: non-generic structs with named
//! fields, tuple structs, unit structs, and enums whose variants are unit,
//! tuple, or struct-like. Generic types are rejected with a compile error.

use proc_macro::{Delimiter, Group, TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input).and_then(|item| expand(&item)) {
        Ok(src) => src.parse().expect("serde_derive: generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input).and_then(|item| expand_de(&item)) {
        Ok(src) => src.parse().expect("serde_derive: generated impl parses"),
        Err(msg) => format!("compile_error!({msg:?});").parse().unwrap(),
    }
}

/// The derived item, reduced to what both expansions need.
enum Item {
    NamedStruct(String, Vec<String>),
    TupleStruct(String, usize),
    UnitStruct(String),
    Enum(String, Vec<Variant>),
}

impl Item {
    fn name(&self) -> &str {
        match self {
            Item::NamedStruct(n, _)
            | Item::TupleStruct(n, _)
            | Item::UnitStruct(n)
            | Item::Enum(n, _) => n,
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&toks, &mut i);
    let kind = match &toks.get(i) {
        Some(TokenTree::Ident(id))
            if id.to_string() == "struct" || id.to_string() == "enum" =>
        {
            id.to_string()
        }
        other => return Err(format!("serde_derive: expected struct/enum, got {other:?}")),
    };
    i += 1;
    let name = match &toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde_derive: expected type name, got {other:?}")),
    };
    i += 1;
    if matches!(&toks.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde_derive (vendored stub): generic type `{name}` is not supported"
        ));
    }

    if kind == "struct" {
        match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::NamedStruct(name, named_fields(g)))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Item::TupleStruct(name, tuple_arity(g)))
            }
            _ => Ok(Item::UnitStruct(name)),
        }
    } else {
        match &toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Ok(Item::Enum(name, variants(g)))
            }
            other => Err(format!("serde_derive: expected enum body, got {other:?}")),
        }
    }
}

fn expand(item: &Item) -> Result<String, String> {
    let name = item.name();
    let body = match item {
        Item::NamedStruct(_, fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), \
                         ::serde::Serialize::to_content(&self.{f}))"
                    )
                })
                .collect();
            format!("::serde::Content::Map(vec![{}])", pairs.join(", "))
        }
        Item::TupleStruct(_, n) => match n {
            0 => "::serde::Content::Seq(vec![])".to_string(),
            // Newtype structs serialize transparently, as in real serde.
            1 => "::serde::Serialize::to_content(&self.0)".to_string(),
            _ => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Serialize::to_content(&self.{k})"))
                    .collect();
                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
            }
        },
        Item::UnitStruct(_) => "::serde::Content::Null".to_string(),
        Item::Enum(_, variants) => {
            let mut arms = Vec::new();
            for v in variants {
                arms.push(match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => ::serde::Content::Str(::std::string::String::from({vn:?})),"
                    ),
                    Variant::Tuple(vn, n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("__f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::to_content(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_content({b})"))
                                .collect();
                            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => ::serde::Content::Map(vec![\
                             (::std::string::String::from({vn:?}), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), \
                                     ::serde::Serialize::to_content({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => ::serde::Content::Map(vec![\
                             (::std::string::String::from({vn:?}), \
                             ::serde::Content::Map(vec![{}]))]),",
                            fields.join(", "),
                            pairs.join(", ")
                        )
                    }
                });
            }
            format!("match self {{ {} }}", arms.join(" "))
        }
    };

    Ok(format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{ {body} }}\n\
         }}"
    ))
}

/// Expansion for `#[derive(Deserialize)]`: the exact inverse of [`expand`]'s
/// encoding, so derive pairs round-trip through `Content` (and JSON).
fn expand_de(item: &Item) -> Result<String, String> {
    let name = item.name();
    let body = match item {
        Item::NamedStruct(_, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__m, {f:?})?,"))
                .collect();
            format!(
                "match __c {{\n\
                     ::serde::Content::Map(__m) => ::std::result::Result::Ok({name} {{ {} }}),\n\
                     __other => ::std::result::Result::Err(::serde::DeError::expected(\"map\", __other)),\n\
                 }}",
                inits.join(" ")
            )
        }
        Item::TupleStruct(_, n) => match n {
            0 => format!(
                "match __c {{\n\
                     ::serde::Content::Seq(__s) if __s.is_empty() => \
                         ::std::result::Result::Ok({name}()),\n\
                     __other => ::std::result::Result::Err(::serde::DeError::expected(\"empty seq\", __other)),\n\
                 }}"
            ),
            // Newtype structs deserialize transparently, mirroring serialization.
            1 => format!(
                "::std::result::Result::Ok({name}(::serde::Deserialize::from_content(__c)?))"
            ),
            _ => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_content(&__s[{k}])?"))
                    .collect();
                format!(
                    "match __c {{\n\
                         ::serde::Content::Seq(__s) if __s.len() == {n} => \
                             ::std::result::Result::Ok({name}({})),\n\
                         __other => ::std::result::Result::Err(\
                             ::serde::DeError::expected(\"seq of length {n}\", __other)),\n\
                     }}",
                    items.join(", ")
                )
            }
        },
        Item::UnitStruct(_) => format!(
            "match __c {{\n\
                 ::serde::Content::Null => ::std::result::Result::Ok({name}),\n\
                 __other => ::std::result::Result::Err(::serde::DeError::expected(\"null\", __other)),\n\
             }}"
        ),
        Item::Enum(_, variants) => {
            let mut unit_arms = Vec::new();
            let mut data_arms = Vec::new();
            for v in variants {
                match v {
                    Variant::Unit(vn) => unit_arms.push(format!(
                        "{vn:?} => ::std::result::Result::Ok({name}::{vn}),"
                    )),
                    Variant::Tuple(vn, n) => {
                        let inner = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(\
                                 ::serde::Deserialize::from_content(__v)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|k| {
                                    format!("::serde::Deserialize::from_content(&__s[{k}])?")
                                })
                                .collect();
                            format!(
                                "match __v {{\n\
                                     ::serde::Content::Seq(__s) if __s.len() == {n} => \
                                         ::std::result::Result::Ok({name}::{vn}({})),\n\
                                     __other => ::std::result::Result::Err(\
                                         ::serde::DeError::expected(\"seq of length {n}\", __other)),\n\
                                 }}",
                                items.join(", ")
                            )
                        };
                        data_arms.push(format!("{vn:?} => {{ {inner} }}"));
                    }
                    Variant::Struct(vn, fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(__vm, {f:?})?,"))
                            .collect();
                        data_arms.push(format!(
                            "{vn:?} => match __v {{\n\
                                 ::serde::Content::Map(__vm) => \
                                     ::std::result::Result::Ok({name}::{vn} {{ {} }}),\n\
                                 __other => ::std::result::Result::Err(\
                                     ::serde::DeError::expected(\"map\", __other)),\n\
                             }}",
                            inits.join(" ")
                        ));
                    }
                }
            }
            format!(
                "match __c {{\n\
                     ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                         {}\n\
                         __v => ::std::result::Result::Err(::serde::DeError::new(\
                             ::std::format!(\"unknown variant `{{__v}}` for {name}\"))),\n\
                     }},\n\
                     ::serde::Content::Map(__m) if __m.len() == 1 => {{\n\
                         let (__k, __v) = &__m[0];\n\
                         match __k.as_str() {{\n\
                             {}\n\
                             __k => ::std::result::Result::Err(::serde::DeError::new(\
                                 ::std::format!(\"unknown variant `{{__k}}` for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(\
                         ::serde::DeError::expected(\"enum representation\", __other)),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };

    Ok(format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_content(__c: &::serde::Content) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{ {body} }}\n\
         }}"
    ))
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)` prefix.
fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(toks.get(*i), Some(TokenTree::Group(g))
                    if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => break,
        }
    }
}

/// Advances `i` to just past the next `,` that sits outside any `<...>` nesting
/// (parens/brackets/braces are opaque `Group`s, so only angles need counting).
fn skip_past_comma(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0i32;
    while let Some(t) = toks.get(*i) {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    *i += 1;
                    return;
                }
                _ => {}
            }
        }
        *i += 1;
    }
}

fn named_fields(g: &Group) -> Vec<String> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        match toks.get(i) {
            Some(TokenTree::Ident(id)) => out.push(id.to_string()),
            _ => break,
        }
        i += 1;
        skip_past_comma(&toks, &mut i);
    }
    out
}

fn tuple_arity(g: &Group) -> usize {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut n = 1;
    let mut angle = 0i32;
    for (k, t) in toks.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                // A trailing comma does not add a field.
                ',' if angle == 0 && k + 1 < toks.len() => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn variants(g: &Group) -> Vec<Variant> {
    let toks: Vec<TokenTree> = g.stream().into_iter().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        skip_attrs_and_vis(&toks, &mut i);
        let name = match toks.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            _ => break,
        };
        i += 1;
        match toks.get(i) {
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                out.push(Variant::Tuple(name, tuple_arity(vg)));
                i += 1;
            }
            Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                out.push(Variant::Struct(name, named_fields(vg)));
                i += 1;
            }
            _ => out.push(Variant::Unit(name)),
        }
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        skip_past_comma(&toks, &mut i);
    }
    out
}
