//! Vendored minimal stand-in for `serde`, used because this build environment
//! has no access to crates.io (see `third_party/README.md`).
//!
//! Instead of the real visitor-based data model, `Serialize` lowers a value to
//! a [`Content`] tree that `serde_json` then renders, and [`Deserialize`]
//! rebuilds a value from the same tree. The surface covers exactly what this
//! workspace uses: `#[derive(Serialize)]` / `#[derive(Deserialize)]` on plain
//! structs and enums, plus impls for primitives, strings, options, sequences,
//! arrays, tuples, and string-keyed maps.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// Simplified serde data model: what a value looks like once serialized.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered; `serde_json` re-sorts into its map type.
    Map(Vec<(String, Content)>),
}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

impl Content {
    /// Human-readable tag for error messages ("map", "seq", ...).
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::I64(_) => "integer",
            Content::U64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "seq",
            Content::Map(_) => "map",
        }
    }
}

/// Error produced when a [`Content`] tree does not match the requested type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    pub fn new(msg: impl Into<String>) -> Self {
        DeError(msg.into())
    }
    /// "expected X, found Y" for a mismatched node.
    pub fn expected(what: &str, found: &Content) -> Self {
        DeError(format!("expected {what}, found {}", found.kind()))
    }
    /// Prefixes the message with the field/variant it occurred under.
    pub fn in_field(self, field: &str) -> Self {
        DeError(format!("{field}: {}", self.0))
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}
impl std::error::Error for DeError {}

/// Mirror of [`Serialize`]: rebuild a value from its [`Content`] encoding.
pub trait Deserialize: Sized {
    fn from_content(content: &Content) -> Result<Self, DeError>;
}

/// Named-struct field lookup used by `#[derive(Deserialize)]`. A missing key
/// deserializes as `Null` so `Option` fields default to `None` while required
/// fields report which key was absent.
pub fn field<T: Deserialize>(map: &[(String, Content)], key: &str) -> Result<T, DeError> {
    match map.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_content(v).map_err(|e| e.in_field(key)),
        None => T::from_content(&Content::Null)
            .map_err(|_| DeError(format!("missing field `{key}`"))),
    }
}

macro_rules! impl_de_signed {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match content {
                    Content::I64(v) => *v,
                    Content::U64(v) => i64::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::new(format!(
                    "{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
macro_rules! impl_de_unsigned {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let v = match content {
                    Content::U64(v) => *v,
                    Content::I64(v) => u64::try_from(*v)
                        .map_err(|_| DeError::new(format!("{v} out of range")))?,
                    other => return Err(DeError::expected("integer", other)),
                };
                <$t>::try_from(v).map_err(|_| DeError::new(format!(
                    "{v} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
impl_de_signed!(i8, i16, i32, i64, isize);
impl_de_unsigned!(u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        // Integral floats may have been narrowed to the integer variants on
        // the way through JSON; widen them back.
        match content {
            Content::F64(v) => Ok(*v),
            Content::I64(v) => Ok(*v as f64),
            Content::U64(v) => Ok(*v as f64),
            other => Err(DeError::expected("number", other)),
        }
    }
}
impl Deserialize for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        f64::from_content(content).map(|v| v as f32)
    }
}
impl Deserialize for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(v) => Ok(*v),
            other => Err(DeError::expected("bool", other)),
        }
    }
}
impl Deserialize for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(DeError::expected("single-char string", other)),
        }
    }
}
impl Deserialize for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::expected("string", other)),
        }
    }
}
impl Deserialize for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::expected("null", other)),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(DeError::expected("seq", other)),
        }
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = Vec::<T>::from_content(content)?;
        let got = items.len();
        items.try_into().map_err(|_| {
            DeError::new(format!("expected array of length {N}, found {got}"))
        })
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_content(v).map_err(|e| e.in_field(k))?)))
                .collect(),
            other => Err(DeError::expected("map", other)),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($($n:tt $t:ident),+; $len:expr))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                match content {
                    Content::Seq(items) if items.len() == $len => {
                        Ok(($($t::from_content(&items[$n])?,)+))
                    }
                    Content::Seq(items) => Err(DeError::new(format!(
                        "expected seq of length {}, found {}", $len, items.len()))),
                    other => Err(DeError::expected("seq", other)),
                }
            }
        }
    )*};
}
impl_de_tuple! {
    (0 A; 1)
    (0 A, 1 B; 2)
    (0 A, 1 B, 2 C; 3)
    (0 A, 1 B, 2 C, 3 D; 4)
    (0 A, 1 B, 2 C, 3 D, 4 E; 5)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F; 6)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G; 7)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H; 8)
}

/// Namespace parity with real serde (`serde::ser::Serialize`).
pub mod ser {
    pub use super::{Content, Serialize};
}

/// Namespace parity with real serde (`serde::de::Deserialize`).
pub mod de {
    pub use super::{Content, DeError, Deserialize};
}

#[cfg(test)]
mod de_tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u64::from_content(&Content::U64(7)).unwrap(), 7);
        assert_eq!(i32::from_content(&Content::I64(-3)).unwrap(), -3);
        assert_eq!(u8::from_content(&Content::I64(200)).unwrap(), 200);
        assert!(u8::from_content(&Content::I64(300)).is_err());
        assert!(u64::from_content(&Content::I64(-1)).is_err());
        assert_eq!(f64::from_content(&Content::U64(5)).unwrap(), 5.0);
        assert!(bool::from_content(&Content::Bool(true)).unwrap());
        assert_eq!(
            String::from_content(&Content::Str("x".into())).unwrap(),
            "x"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_content(&v.to_content()).unwrap(), v);
        let a = [1usize, 2, 3];
        assert_eq!(<[usize; 3]>::from_content(&a.to_content()).unwrap(), a);
        assert!(<[usize; 4]>::from_content(&a.to_content()).is_err());
        let t = (1u32, -2i64, 3.5f64);
        assert_eq!(<(u32, i64, f64)>::from_content(&t.to_content()).unwrap(), t);
        let o: Option<u64> = None;
        assert_eq!(Option::<u64>::from_content(&o.to_content()).unwrap(), None);
        assert_eq!(
            Option::<u64>::from_content(&Some(4u64).to_content()).unwrap(),
            Some(4)
        );
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u64);
        assert_eq!(
            BTreeMap::<String, u64>::from_content(&m.to_content()).unwrap(),
            m
        );
    }

    #[test]
    fn missing_field_reports_key() {
        let map = vec![("present".to_string(), Content::U64(1))];
        let err = field::<u64>(&map, "absent").unwrap_err();
        assert!(err.to_string().contains("absent"), "{err}");
        // Option fields tolerate absence.
        assert_eq!(field::<Option<u64>>(&map, "absent").unwrap(), None);
    }
}
