//! Vendored minimal stand-in for `serde`, used because this build environment
//! has no access to crates.io (see `third_party/README.md`).
//!
//! Instead of the real visitor-based data model, `Serialize` lowers a value to
//! a [`Content`] tree that `serde_json` then renders. The surface covers
//! exactly what this workspace uses: `#[derive(Serialize)]` on plain structs
//! and enums, plus impls for primitives, strings, options, sequences, arrays,
//! tuples, and string-keyed maps.

use std::collections::BTreeMap;

pub use serde_derive::Serialize;

/// Simplified serde data model: what a value looks like once serialized.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Seq(Vec<Content>),
    /// Insertion-ordered; `serde_json` re-sorts into its map type.
    Map(Vec<(String, Content)>),
}

pub trait Serialize {
    fn to_content(&self) -> Content;
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
    )*};
}
macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);
impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}
impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}
impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}
impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}
impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}
impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}
impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}
impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}
impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}
impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_content(&self) -> Content {
        Content::Map(self.iter().map(|(k, v)| (k.clone(), v.to_content())).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.to_content()),+])
            }
        }
    )*};
}
impl_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
    (0 A, 1 B, 2 C, 3 D, 4 E)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G)
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H)
}

/// Namespace parity with real serde (`serde::ser::Serialize`).
pub mod ser {
    pub use super::{Content, Serialize};
}
