//! Vendored minimal stand-in for `crossbeam` (no crates.io in this build
//! environment; see `third_party/README.md`).
//!
//! Only `crossbeam::thread::scope` is provided, implemented over
//! `std::thread::scope` (stable since 1.63, which makes crossbeam's version
//! largely redundant). The crossbeam calling convention is preserved: the
//! scope closure's spawns receive a scope handle argument, and `scope` returns
//! `Err` instead of unwinding when a worker panics.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    pub use std::thread::ScopedJoinHandle;

    /// Result type matching `crossbeam::thread::scope`'s.
    pub type ScopeResult<T> = std::thread::Result<T>;

    /// A copyable handle onto a `std::thread::Scope`, passed (by value, which
    /// crossbeam's `|_|` spawn closures tolerate) to spawned workers.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    impl<'scope, 'env> Scope<'scope, 'env> {
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let handle = *self;
            self.inner.spawn(move || f(handle))
        }
    }

    pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
    where
        F: for<'scope> FnOnce(Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(Scope { inner: s }))
        }))
    }

    #[cfg(test)]
    mod tests {
        use std::sync::atomic::{AtomicUsize, Ordering};

        #[test]
        fn scope_joins_all_workers() {
            let n = AtomicUsize::new(0);
            super::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|_| n.fetch_add(1, Ordering::SeqCst));
                }
            })
            .unwrap();
            assert_eq!(n.load(Ordering::SeqCst), 8);
        }

        #[test]
        fn worker_panic_becomes_err() {
            let r = super::scope(|s| {
                s.spawn(|_| panic!("boom"));
            });
            assert!(r.is_err());
        }

        #[test]
        fn handles_can_be_joined_inside_scope() {
            let sums: Vec<usize> = super::scope(|s| {
                let handles: Vec<_> =
                    (0..4).map(|i| s.spawn(move |_| i * 10)).collect();
                handles.into_iter().map(|h| h.join().unwrap()).collect()
            })
            .unwrap();
            assert_eq!(sums, vec![0, 10, 20, 30]);
        }
    }
}
