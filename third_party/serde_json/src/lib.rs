//! Vendored minimal stand-in for `serde_json` (no crates.io in this build
//! environment; see `third_party/README.md`).
//!
//! Provides the subset the workspace uses: [`Value`] with sorted-key objects
//! (matching real serde_json's default `BTreeMap` ordering), [`to_value`],
//! [`to_string`] / [`to_string_pretty`], a strict-enough [`from_str`] parser
//! for round-tripping its own output, and typed decoding via [`from_value`]
//! (`from_str::<T>` composes the two).

use std::collections::BTreeMap;
use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Key-sorted object representation, like real serde_json without
/// `preserve_order`.
pub type Map<K, V> = BTreeMap<K, V>;

#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    Object(Map<String, Value>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Number(N);

#[derive(Debug, Clone, PartialEq)]
enum N {
    I(i64),
    U(u64),
    F(f64),
}

impl Number {
    pub fn as_f64(&self) -> Option<f64> {
        Some(match self.0 {
            N::I(v) => v as f64,
            N::U(v) => v as f64,
            N::F(v) => v,
        })
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            N::I(v) => Some(v),
            N::U(v) => i64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            N::U(v) => Some(v),
            N::I(v) => u64::try_from(v).ok(),
            N::F(_) => None,
        }
    }

    pub fn is_f64(&self) -> bool {
        matches!(self.0, N::F(_))
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            N::I(v) => write!(f, "{v}"),
            N::U(v) => write!(f, "{v}"),
            N::F(v) => {
                if v.is_finite() {
                    if v == v.trunc() && v.abs() < 1e15 {
                        write!(f, "{v:.1}")
                    } else {
                        write!(f, "{v}")
                    }
                } else {
                    // Real serde_json refuses non-finite floats; emit null.
                    write!(f, "null")
                }
            }
        }
    }
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self, None, 0)
    }
}

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

fn content_to_value(c: Content) -> Value {
    match c {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::I64(v) => Value::Number(Number(N::I(v))),
        Content::U64(v) => Value::Number(Number(N::U(v))),
        Content::F64(v) => Value::Number(Number(N::F(v))),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(pairs) => {
            Value::Object(pairs.into_iter().map(|(k, v)| (k, content_to_value(v))).collect())
        }
    }
}

fn value_to_content(v: &Value) -> Content {
    match v {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(Number(N::I(n))) => Content::I64(*n),
        Value::Number(Number(N::U(n))) => Content::U64(*n),
        Value::Number(Number(N::F(n))) => Content::F64(*n),
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => {
            Content::Map(map.iter().map(|(k, v)| (k.clone(), value_to_content(v))).collect())
        }
    }
}

/// `Value` deserializes into itself, so `from_str::<Value>` keeps the untyped
/// path that predates typed decoding.
impl Deserialize for Value {
    fn from_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(content_to_value(content.clone()))
    }
}

pub fn to_value<T: Serialize>(value: T) -> Result<Value, Error> {
    Ok(content_to_value(value.to_content()))
}

/// Decode a parsed [`Value`] into a `Deserialize` type.
pub fn from_value<T: Deserialize>(value: &Value) -> Result<T, Error> {
    T::from_content(&value_to_content(value)).map_err(|e| Error(e.to_string()))
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(content_to_value(value.to_content()).to_string())
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let v = content_to_value(value.to_content());
    Ok(format!("{}", Pretty(&v)))
}

struct Pretty<'a>(&'a Value);

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_value(f, self.0, Some(2), 0)
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for ch in s.chars() {
        match ch {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

fn write_value(
    f: &mut fmt::Formatter<'_>,
    v: &Value,
    indent: Option<usize>,
    depth: usize,
) -> fmt::Result {
    let (nl, pad, pad_in, colon) = match indent {
        Some(w) => {
            ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1)), ": ")
        }
        None => ("", String::new(), String::new(), ":"),
    };
    match v {
        Value::Null => f.write_str("null"),
        Value::Bool(b) => write!(f, "{b}"),
        Value::Number(n) => write!(f, "{n}"),
        Value::String(s) => write_escaped(f, s),
        Value::Array(items) => {
            if items.is_empty() {
                return f.write_str("[]");
            }
            f.write_str("[")?;
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{nl}{pad_in}")?;
                write_value(f, item, indent, depth + 1)?;
            }
            write!(f, "{nl}{pad}]")
        }
        Value::Object(map) => {
            if map.is_empty() {
                return f.write_str("{}");
            }
            f.write_str("{")?;
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{nl}{pad_in}")?;
                write_escaped(f, k)?;
                f.write_str(colon)?;
                write_value(f, val, indent, depth + 1)?;
            }
            write!(f, "{nl}{pad}}}")
        }
    }
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    from_value(&v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected {:?} at byte {}", b as char, self.pos)))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.lit("null", Value::Null),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error("bad \\u escape".into()))?,
                                16,
                            )
                            .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error("bad \\u codepoint".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => return Err(Error(format!("bad escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the remaining input.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error("invalid utf-8".into()))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::Number(Number(N::U(v))));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Number(Number(N::I(v))));
            }
            // Integer literal outside u64/i64 range (e.g. the 300-digit
            // expansion Display emits for 1e300): fall back to f64, as real
            // serde_json does without `arbitrary_precision`.
        }
        let v: f64 = text.parse().map_err(|e| Error(format!("bad number {text:?}: {e}")))?;
        Ok(Value::Number(Number(N::F(v))))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(out));
                }
                other => return Err(Error(format!("expected , or ] got {other:?}"))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut out = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(out));
                }
                other => return Err(Error(format!("expected , or }} got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let src = r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": true, "d": null}"#;
        let v: Value = from_str(src).unwrap();
        let back: Value = from_str(&v.to_string()).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn pretty_is_parseable() {
        let rows = vec![("k".to_string(), 1.5f64)];
        let s = to_string_pretty(&rows).unwrap();
        assert!(from_str::<Value>(&s).is_ok());
    }

    #[test]
    fn typed_round_trip() {
        let original = vec![(1u64, -2i64, 0.125f64), (u64::MAX, i64::MIN, 3.0)];
        let json = to_string(&original).unwrap();
        let back: Vec<(u64, i64, f64)> = from_str(&json).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn f64_round_trip_is_bit_exact() {
        // The persisted DseCache depends on floats surviving JSON unchanged:
        // shortest-round-trip Display for fractional values, `{v:.1}` for
        // integral ones, and the u64 path for integers.
        for v in [0.1f64, 1.0 / 3.0, 1e300, 5e-324, -0.0, 123456789.0, 9.007199254740993e15] {
            let json = to_string(&v).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v} -> {json} -> {back}");
        }
    }
}
