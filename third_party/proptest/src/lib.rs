//! Vendored minimal stand-in for `proptest` (no crates.io in this build
//! environment; see `third_party/README.md`).
//!
//! A deterministic random-sampling property harness: the `proptest!` macro
//! runs each property `cases` times with inputs sampled from [`strategy::Strategy`]
//! values (seeded per test name, so failures reproduce across runs). There is
//! no shrinking — a failing case reports its index and message only.
//!
//! Supported strategy surface (what this workspace uses): integer and float
//! ranges, inclusive integer ranges, tuples up to arity 5, `prop_map`,
//! `collection::vec`, and `bool::ANY`.

pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }

    /// The vendored `rand::rngs::StdRng`, seeded from the test name:
    /// deterministic across runs (real proptest also builds on `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        pub fn deterministic(name: &str) -> Self {
            // FNV-1a over the test name.
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { inner: rand::SeedableRng::seed_from_u64(h) }
        }

        pub fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A constant strategy (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Range strategies delegate uniform sampling to the vendored `rand`
    // crate's `SampleRange` impls, as real proptest does.
    macro_rules! impl_int_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_float_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::gen_range(rng, self.clone())
                }
            }
        )*};
    }
    impl_float_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($n:tt $s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$n.sample(rng),)+)
                }
            }
        )*};
    }
    impl_tuple_strategy! {
        (0 A)
        (0 A, 1 B)
        (0 A, 1 B, 2 C)
        (0 A, 1 B, 2 C, 3 D)
        (0 A, 1 B, 2 C, 3 D, 4 E)
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Length distribution for [`vec`].
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi_exclusive: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange { lo: r.start, hi_exclusive: r.end }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi_exclusive: r.end() + 1 }
        }
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.lo < self.size.hi_exclusive, "empty size range");
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod bool {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `proptest::bool::ANY` — a uniform boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat_param in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                for __case in 0..__cfg.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut __rng);
                    )+
                    let __outcome: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(e) => panic!(
                            "proptest `{}` failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cfg.cases,
                            e
                        ),
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&($left), &($right));
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
