//! Vendored minimal stand-in for `rand` 0.8 (no crates.io in this build
//! environment; see `third_party/README.md`).
//!
//! [`rngs::StdRng`] is a SplitMix64 generator rather than ChaCha12 — the
//! workspace only needs seeded determinism, not cryptographic quality. The
//! surface covers `SeedableRng::seed_from_u64` and `Rng::gen_range` over
//! integer and float ranges.

use std::ops::{Range, RangeInclusive};

pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64: tiny, fast, and plenty for seeded test workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state: state.wrapping_add(0x9E37_79B9_7F4A_7C15) }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let i = rng.gen_range(-4i8..=4);
            assert!((-4..=4).contains(&i));
        }
    }
}
