//! Beyond GNNs: a DLRM-shaped multiphase chain (Section VI).
//!
//! DLRM inference is "an SpMM and a DenseGEMM in parallel followed by
//! concatenation followed by a DenseGEMM". This example builds that chain from
//! the same phase engines and compares sequential, idealised-pipelined, and
//! PE-partitioned (PP) composition of the two-layer top MLP — and shows the
//! typed [`ChainError`] a structurally impossible chain now returns instead of
//! panicking.
//!
//! ```sh
//! cargo run --release --example dlrm_multiphase
//! ```

use omega_gnn::core::multiphase::{evaluate_chain, Chain, ChainNode, Link, Stage};
use omega_gnn::prelude::*;
use omega_accel::engine::GemmDims;
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};

fn agg_tiling(tiles: [usize; 3]) -> IntraTiling {
    IntraTiling::new(
        Phase::Aggregation,
        LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).expect("valid order"),
        tiles,
    )
}

fn cmb_tiling(tiles: [usize; 3]) -> IntraTiling {
    IntraTiling::new(
        Phase::Combination,
        LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).expect("valid order"),
        tiles,
    )
}

fn main() {
    let hw = AccelConfig::paper_default();

    // A batch of 2048 requests. Each gathers 32 sparse embeddings of width 64
    // (SpMM over a multi-hot lookup matrix) while the bottom MLP transforms the
    // 64 dense features; the concatenated 128-wide vector feeds a 2-layer top
    // MLP whose stages can be pipelined producer/consumer.
    let batch = 2048;
    let front = ChainNode::Parallel(vec![
        Stage::spmm("embedding-gather", vec![32; batch], 64, agg_tiling([16, 16, 1])),
        Stage::gemm("bottom-mlp", GemmDims { v: batch, f: 64, g: 64 }, cmb_tiling([16, 16, 1])),
    ]);
    let top1 = |t: [usize; 3]| {
        Stage::gemm("top-mlp-1", GemmDims { v: batch, f: 128, g: 64 }, cmb_tiling(t))
    };
    let top2 = |t: [usize; 3]| {
        Stage::gemm("top-mlp-2", GemmDims { v: batch, f: 64, g: 32 }, cmb_tiling(t))
    };

    // The top-MLP handoff is 2048×64 elements; pipeline it 64 rows at a time.
    let pel = 64 * 64;
    let variants: [(&str, [usize; 3], [usize; 3], Link); 3] = [
        ("sequential top MLP", [16, 16, 2], [16, 16, 1], Link::Sequential),
        // Idealised: both stages keep the full NoC — an upper bound.
        ("pipelined top MLP (idealised)", [16, 16, 2], [16, 16, 1], Link::pipelined(pel)),
        // Physical PP: 256/256 PE partition, proportionally split bandwidth.
        ("pipelined top MLP (PP 256/256)", [16, 16, 1], [16, 16, 1], Link::pipelined_split(pel, 256, 256)),
    ];
    for (label, t1, t2, link) in variants {
        let chain = Chain {
            nodes: vec![front.clone(), ChainNode::Single(top1(t1)), ChainNode::Single(top2(t2))],
            links: vec![Link::Sequential, link],
        };
        let report = evaluate_chain(&chain, &hw).expect("chain is structurally valid");
        println!("{label}:");
        for (name, stats) in &report.stages {
            println!(
                "  {:<18} {:>10} cycles   {:>12} MACs   util {:.2}",
                name,
                stats.cycles,
                stats.macs,
                stats.compute_utilisation()
            );
        }
        println!(
            "  total: {} cycles, {:.3} uJ buffer energy\n",
            report.total_cycles,
            report.energy.total_uj()
        );
    }

    // Pipelining into the parallel front end is structurally impossible —
    // historically a panic, now a typed error the mapper can skip over.
    let bad = Chain {
        nodes: vec![front, ChainNode::Single(top1([16, 16, 2]))],
        links: vec![Link::pipelined(pel)],
    };
    let err = evaluate_chain(&bad, &hw).expect_err("parallel neighbours cannot pipeline");
    println!("pipelining a Parallel neighbour is rejected: {err}\n");

    println!("the taxonomy's inter-phase analysis carries over unchanged: the");
    println!("pipelined link applies the same sum(max(...)) composition as PP,");
    println!("and the partitioned variant throttles each side to its NoC share.");
}
