//! Beyond GNNs: a DLRM-shaped multiphase chain (Section VI).
//!
//! DLRM inference is "an SpMM and a DenseGEMM in parallel followed by
//! concatenation followed by a DenseGEMM". This example builds that chain from
//! the same phase engines and compares sequential vs pipelined composition of
//! the back half.
//!
//! ```sh
//! cargo run --release --example dlrm_multiphase
//! ```

use omega_gnn::core::multiphase::{evaluate_chain, Chain, ChainNode, Link, Stage};
use omega_gnn::prelude::*;
use omega_accel::engine::GemmDims;
use omega_dataflow::{Dim, IntraTiling, LoopOrder, Phase};

fn agg_tiling(tiles: [usize; 3]) -> IntraTiling {
    IntraTiling::new(
        Phase::Aggregation,
        LoopOrder::new(Phase::Aggregation, [Dim::V, Dim::F, Dim::N]).expect("valid order"),
        tiles,
    )
}

fn cmb_tiling(tiles: [usize; 3]) -> IntraTiling {
    IntraTiling::new(
        Phase::Combination,
        LoopOrder::new(Phase::Combination, [Dim::V, Dim::G, Dim::F]).expect("valid order"),
        tiles,
    )
}

fn main() {
    let hw = AccelConfig::paper_default();

    // A batch of 2048 requests. Each gathers 32 sparse embeddings of width 64
    // (SpMM over a multi-hot lookup matrix) while the bottom MLP transforms the
    // 64 dense features; the concatenated 128-wide vector feeds the top MLP.
    let batch = 2048;
    let lookups_per_request = 32;
    let embedding_width = 64;

    // Parallel front end: each branch is tiled onto half the array.
    let embedding = Stage::spmm(
        "embedding-gather",
        vec![lookups_per_request; batch],
        embedding_width,
        agg_tiling([16, 16, 1]),
    );
    let bottom_mlp = Stage::gemm(
        "bottom-mlp",
        GemmDims { v: batch, f: 64, g: 64 },
        cmb_tiling([16, 16, 1]),
    );
    let top_dims = GemmDims { v: batch, f: 128, g: 32 };

    for (label, link) in [
        ("sequential concat -> top MLP", Link::Sequential),
        ("row-pipelined concat -> top MLP (Pel = 64 rows)", Link::Pipelined { pel: 64 * 128 }),
    ] {
        // Rebuild the front end per run (stages are consumed by the chain).
        let chain = Chain {
            nodes: vec![
                ChainNode::Parallel(vec![embedding.clone(), bottom_mlp.clone()]),
                ChainNode::Single(Stage::gemm("top-mlp", top_dims, cmb_tiling([16, 16, 2]))),
            ],
            links: vec![link],
        };
        let report = evaluate_chain(&chain, &hw);
        println!("{label}:");
        for (name, stats) in &report.stages {
            println!(
                "  {:<18} {:>10} cycles   {:>12} MACs   util {:.2}",
                name,
                stats.cycles,
                stats.macs,
                stats.compute_utilisation()
            );
        }
        println!(
            "  total: {} cycles, {:.3} uJ buffer energy\n",
            report.total_cycles,
            report.energy.total_uj()
        );
    }

    println!("the taxonomy's inter-phase analysis carries over unchanged: the");
    println!("pipelined link applies the same sum(max(...)) composition as PP.");
}
