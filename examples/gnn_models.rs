//! Whole-model evaluation: 2-layer GCN / GraphSAGE / 5-layer GIN on one graph,
//! per-layer dataflow selection, tile refinement, and the runtime-energy
//! Pareto frontier.
//!
//! ```sh
//! cargo run --release --example gnn_models [dataset]
//! ```

use omega_gnn::core::mapper::{pareto_frontier, preset_candidates, refine_tiles};
use omega_gnn::core::models::{evaluate_model, evaluate_model_mapped, GnnModel};
use omega_gnn::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_name = args.get(1).map(String::as_str).unwrap_or("Cora");
    let spec = DatasetSpec::by_name(dataset_name).unwrap_or_else(DatasetSpec::cora);
    let dataset = spec.generate(17);
    let base = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();

    // --- whole models, one preset across layers ------------------------------
    println!("models on {} (V={}, F={}):\n", base.name, base.v, base.f);
    let models = [GnnModel::gcn_2layer(7), GnnModel::sage_2layer(32, 7), GnnModel::gin(5, 64)];
    for model in &models {
        let preset = Preset::by_name("SP2").expect("preset");
        let fixed = evaluate_model(model, &base, &preset, &hw).expect("legal");
        let mapped =
            evaluate_model_mapped(model, &base, &hw, Objective::Runtime).expect("legal");
        let picks: Vec<String> = mapped
            .layers
            .iter()
            .map(|l| l.dataflow.to_string())
            .collect();
        println!(
            "{:<12} SP2-everywhere: {:>9} cycles | mapped per layer: {:>9} cycles ({:.1}% better)",
            model.name,
            fixed.total_cycles,
            mapped.total_cycles,
            100.0 * (1.0 - mapped.total_cycles as f64 / fixed.total_cycles as f64),
        );
        for (i, p) in picks.iter().enumerate() {
            println!("             layer {i}: {p}");
        }
    }

    // --- tile refinement around the best preset ------------------------------
    println!("\ntile refinement (hill climbing over T_Dim doublings/halvings):");
    let candidates = preset_candidates(&base, &hw);
    for df in candidates.iter().take(3) {
        let before = evaluate(&base, df, &hw).expect("legal").total_cycles;
        let refined = refine_tiles(df, &base, &hw, Objective::Runtime, 16).expect("refinable");
        println!(
            "  {df}: {before} -> {} cycles ({} evaluations)",
            refined.report.total_cycles, refined.evaluated
        );
    }

    // --- Pareto frontier -------------------------------------------------------
    println!("\nruntime/energy Pareto frontier over the Table V presets:");
    for point in pareto_frontier(&candidates, &base, &hw) {
        println!(
            "  {:<28} {:>9} cycles  {:>9.2} uJ",
            point.dataflow.to_string(),
            point.report.total_cycles,
            point.report.energy.total_uj()
        );
    }
}
