//! Visualising the PP pipeline (Fig. 7a as ASCII): reconstruct the chunk
//! schedule from the engines' `Pel`-granularity timestamps and render a Gantt
//! chart of the two partitions, including the bubbles load imbalance creates.
//!
//! ```sh
//! cargo run --release --example pipeline_gantt [dataset] [preset] [agg_fraction]
//! ```

use omega_gnn::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_name = args.get(1).map(String::as_str).unwrap_or("Mutag");
    let preset_name = args.get(2).map(String::as_str).unwrap_or("PP3");
    let agg_fraction: f64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(0.5);

    let spec = DatasetSpec::by_name(dataset_name).unwrap_or_else(DatasetSpec::mutag);
    let dataset = spec.generate(7);
    let wl = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();
    let preset = Preset::by_name(preset_name).expect("preset exists");
    assert_eq!(
        preset.pattern.inter,
        InterPhase::ParallelPipeline,
        "pipeline_gantt needs a PP preset (PP1..PP4)"
    );

    let agg_pes = ((hw.num_pes as f64 * agg_fraction) as usize).clamp(1, hw.num_pes - 1);
    let ctx = wl.tile_context(preset.pattern.phase_order);
    let df = preset.concretize(&ctx, agg_pes, hw.num_pes - agg_pes);
    let report = evaluate(&wl, &df, &hw).expect("legal dataflow");

    // Reconstruct the schedule from the chunk durations and the pipeline
    // recurrence: consumer chunk i starts when both producer chunk i and
    // consumer chunk i-1 are done.
    let p = report.agg.chunk_durations();
    let c_raw = report.cmb.chunk_durations();
    let k = p.len();
    let c = if c_raw.len() == k {
        c_raw
    } else {
        omega_gnn::core::resample_durations(&c_raw, k)
    };
    let mut p_end = vec![0u64; k];
    let mut c_end = vec![0u64; k];
    let mut t = 0;
    for i in 0..k {
        t += p[i];
        p_end[i] = t;
    }
    let mut done = 0;
    for i in 0..k {
        let start = p_end[i].max(done);
        done = start + c[i];
        c_end[i] = done;
    }

    println!(
        "{} on {} — {} ({} agg PEs / {} cmb PEs, Pel = {}, {} chunks)\n",
        preset_name,
        wl.name,
        df,
        df.agg.pe_footprint(),
        df.cmb.pe_footprint(),
        report.pel.unwrap_or(0),
        k
    );

    let total = c_end.last().copied().unwrap_or(0).max(1);
    let width = 72usize;
    let scale = |cycles: u64| (cycles as usize * width / total as usize).min(width);
    let bar = |start: u64, end: u64, ch: char| {
        let s = scale(start);
        let e = scale(end).max(s + 1);
        format!("{}{}{}", " ".repeat(s), ch.to_string().repeat(e - s), " ".repeat(width - e))
    };

    let show = k.min(24);
    for i in 0..show {
        let p_start = if i == 0 { 0 } else { p_end[i - 1] };
        let c_start = c_end[i] - c[i];
        println!("chunk {i:>3} AGG |{}|", bar(p_start, p_end[i], '#'));
        println!("          CMB |{}|", bar(c_start, c_end[i], '='));
    }
    if k > show {
        println!("... ({} more chunks)", k - show);
    }
    println!(
        "\ntotal {} cycles (sum of phases would be {}; overlap saves {:.1}%)",
        report.total_cycles,
        report.agg.cycles + report.cmb.cycles,
        100.0 * (1.0 - report.total_cycles as f64 / (report.agg.cycles + report.cmb.cycles) as f64)
    );
    println!(
        "pipeline efficiency: slower phase = {} cycles, achieved = {} ({:.1}% bubble)",
        report.agg.cycles.max(report.cmb.cycles),
        report.total_cycles,
        100.0
            * (report.total_cycles as f64 / report.agg.cycles.max(report.cmb.cycles) as f64 - 1.0)
    );
}
