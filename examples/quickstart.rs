//! Quickstart: evaluate one GNN dataflow on one dataset.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use omega_gnn::prelude::*;

fn main() {
    // 1. A workload: synthetic Citeseer (Table IV) running one GCN layer with a
    //    16-wide hidden dimension.
    let dataset = DatasetSpec::citeseer().generate(42);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    println!(
        "workload: {} — V={}, F={}, G={}, nnz={}, max degree={}",
        workload.name, workload.v, workload.f, workload.g, workload.nnz, workload.max_degree
    );

    // 2. A machine: the paper's 512-PE flexible spatial accelerator.
    let hw = AccelConfig::paper_default();

    // 3. A dataflow: Table V's SP2 (sequential pipeline, high T_V), tiles chosen
    //    for ~100% static utilisation on this workload.
    let preset = Preset::by_name("SP2").expect("SP2 is a Table V preset");
    let ctx = workload.tile_context(preset.pattern.phase_order);
    let dataflow = preset.concretize(&ctx, hw.num_pes, hw.num_pes);
    println!("dataflow: {dataflow}   tiles (T_V,T_N,T_F | T_V,T_G,T_F) = {:?}", dataflow.tile_tuple());

    // 4. Evaluate.
    let report = evaluate(&workload, &dataflow, &hw).expect("legal dataflow");
    println!("SP-Optimized conditions hold: {}", report.sp_optimized);
    println!("total runtime:        {} cycles", report.total_cycles);
    println!("  aggregation:        {} cycles", report.agg.cycles);
    println!("  combination:        {} cycles", report.cmb.cycles);
    println!("intermediate buffer:  {} elements (Table III)", report.intermediate_buffer_elems);
    println!("buffer energy:        {:.3} uJ", report.energy.total_uj());
    println!("  global buffer:      {:.3} uJ", report.energy.gb_pj / 1e6);
    println!("  intermediate:       {:.3} uJ", report.energy.intermediate_pj / 1e6);
    println!("  register files:     {:.3} uJ", report.energy.rf_pj / 1e6);

    // 5. Compare against the sequential baseline (Seq1).
    let seq1 = Preset::by_name("Seq1").expect("Seq1 is a Table V preset");
    let baseline = evaluate(&workload, &seq1.concretize(&ctx, hw.num_pes, hw.num_pes), &hw)
        .expect("legal dataflow");
    println!(
        "vs Seq1: {:.2}x runtime, {:.2}x energy",
        report.runtime_relative_to(&baseline),
        report.energy.total_pj() / baseline.energy.total_pj()
    );
}
