//! Design-space exploration: exhaustively search the full 6,656-pattern
//! dataflow space with OMEGA as the cost model (the mapping optimizer of
//! Section VI), via the parallel DSE engine.
//!
//! ```sh
//! cargo run --release --example explore_dataflows [dataset] [threads]
//! ```

use omega_gnn::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_name = args.get(1).map(String::as_str).unwrap_or("Cora");
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(4);

    let spec = DatasetSpec::by_name(dataset_name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{dataset_name}', using Cora");
        DatasetSpec::cora()
    });
    let dataset = spec.generate(11);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();

    println!(
        "exhaustively searching all {} patterns (+preset seeds) on {} with {threads} threads ...",
        omega_dataflow::enumerate::design_space_size(),
        workload.name
    );

    let cache = DseCache::global();
    for objective in [Objective::Runtime, Objective::Energy, Objective::Edp] {
        let out = cache.explore(
            &workload,
            &hw,
            &DseOptions { objective, threads, top_k: 3, ..DseOptions::default() },
        );
        let best = out.best().expect("non-empty space");
        println!(
            "\nbest for {:?}: {}  (tiles {:?})  [{} evaluated, {} skipped, {:.2}s]",
            objective,
            best.dataflow,
            best.dataflow.tile_tuple(),
            out.evaluated,
            out.skipped,
            out.elapsed_ms / 1e3,
        );
        println!(
            "  {} cycles, {:.3} uJ, EDP {:.3e}, granularity {:?}, SP-opt {}",
            best.report.total_cycles,
            best.report.energy.total_uj(),
            best.report.edp(),
            best.report.granularity,
            best.report.sp_optimized,
        );
    }

    // How much headroom is there beyond the paper's presets? (The runtime
    // outcome is cached — this re-uses the search above.)
    let out = cache.explore(
        &workload,
        &hw,
        &DseOptions { threads, top_k: 3, ..DseOptions::default() },
    );
    let preset_only = mapper::best_of(
        &mapper::preset_candidates(&workload, &hw),
        &workload,
        &hw,
        Objective::Runtime,
        threads,
    )
    .expect("presets evaluated");
    let optimum = out.best().expect("non-empty space");
    println!(
        "\nruntime: best Table V preset = {} cycles; exhaustive optimum = {} cycles ({:+.1}%)",
        preset_only.report.total_cycles,
        optimum.report.total_cycles,
        100.0
            * (optimum.report.total_cycles as f64 / preset_only.report.total_cycles as f64 - 1.0),
    );
}
