//! Design-space exploration: search the dataflow space with OMEGA as the cost
//! model (the mapping optimizer of Section VI).
//!
//! ```sh
//! cargo run --release --example explore_dataflows [dataset] [samples]
//! ```

use omega_gnn::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_name = args.get(1).map(String::as_str).unwrap_or("Cora");
    let samples: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(200);

    let spec = DatasetSpec::by_name(dataset_name).unwrap_or_else(|| {
        eprintln!("unknown dataset '{dataset_name}', using Cora");
        DatasetSpec::cora()
    });
    let dataset = spec.generate(11);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();

    println!(
        "searching {} candidates (9 presets + {} sampled patterns) on {} ...",
        9 + samples,
        samples,
        workload.name
    );
    let mut candidates = mapper::preset_candidates(&workload, &hw);
    candidates.extend(mapper::sampled_candidates(&workload, &hw, samples, 0));

    for objective in [Objective::Runtime, Objective::Energy, Objective::Edp] {
        let best = mapper::best_of(&candidates, &workload, &hw, objective, 8)
            .expect("candidates evaluated");
        println!(
            "\nbest for {:?}: {}  (tiles {:?})",
            objective,
            best.dataflow,
            best.dataflow.tile_tuple()
        );
        println!(
            "  {} cycles, {:.3} uJ, EDP {:.3e}, granularity {:?}, SP-opt {}",
            best.report.total_cycles,
            best.report.energy.total_uj(),
            best.report.edp(),
            best.report.granularity,
            best.report.sp_optimized,
        );
    }

    // How much headroom is there beyond the paper's presets?
    let preset_only = mapper::best_of(
        &mapper::preset_candidates(&workload, &hw),
        &workload,
        &hw,
        Objective::Runtime,
        8,
    )
    .expect("presets evaluated");
    let searched = mapper::best_of(&candidates, &workload, &hw, Objective::Runtime, 8)
        .expect("candidates evaluated");
    println!(
        "\nruntime: best Table V preset = {} cycles; searched space = {} cycles ({:+.1}%)",
        preset_only.report.total_cycles,
        searched.report.total_cycles,
        100.0 * (searched.report.total_cycles as f64 / preset_only.report.total_cycles as f64 - 1.0),
    );
}
