//! PP load balancing (Fig. 14 extended): sweep the PE allocation between the
//! Aggregation and Combination partitions at a finer granularity than the
//! paper's three points, for one dataset.
//!
//! ```sh
//! cargo run --release --example pipeline_load_balance [dataset]
//! ```

use omega_gnn::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_name = args.get(1).map(String::as_str).unwrap_or("Citeseer");
    let spec = DatasetSpec::by_name(dataset_name).unwrap_or_else(DatasetSpec::citeseer);
    let dataset = spec.generate(5);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    let hw = AccelConfig::paper_default();

    println!("PP PE-allocation sweep on {} (512 PEs total)\n", workload.name);
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "agg PEs", "cmb PEs", "agg cycles", "cmb cycles", "total", "vs 50-50"
    );

    for preset_name in ["PP1", "PP3"] {
        let preset = Preset::by_name(preset_name).expect("preset exists");
        println!("--- {preset_name} ({}) ---", preset.distinguishing_property);
        let ctx = workload.tile_context(preset.pattern.phase_order);
        let run = |agg_pes: usize| {
            let df = preset.concretize(&ctx, agg_pes, hw.num_pes - agg_pes);
            evaluate(&workload, &df, &hw).expect("legal dataflow")
        };
        let base = run(256).total_cycles.max(1) as f64;
        for agg_pes in [64usize, 128, 192, 256, 320, 384, 448] {
            let report = run(agg_pes);
            println!(
                "{:>10} {:>10} {:>12} {:>12} {:>12} {:>9.3}",
                agg_pes,
                hw.num_pes - agg_pes,
                report.agg.cycles,
                report.cmb.cycles,
                report.total_cycles,
                report.total_cycles as f64 / base,
            );
        }
        println!();
    }

    println!("the slower partition bounds every pipeline step (Section IV-C):");
    println!("starving the phase that dominates this workload inflates the total.");
}
