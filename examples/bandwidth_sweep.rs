//! Bandwidth sensitivity (Fig. 16 extended): sweep the global-buffer
//! distribution/reduction bandwidth and watch the inter-phase strategies
//! diverge — PP suffers most because the two concurrent partitions share the
//! NoC (Section V-C3).
//!
//! ```sh
//! cargo run --release --example bandwidth_sweep [dataset]
//! ```

use omega_gnn::prelude::*;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dataset_name = args.get(1).map(String::as_str).unwrap_or("Collab");
    let spec = DatasetSpec::by_name(dataset_name).unwrap_or_else(DatasetSpec::collab);
    let dataset = spec.generate(3);
    let workload = GnnWorkload::gcn_layer(&dataset, 16);

    let presets = ["Seq1", "Seq2", "SP1", "SP2", "PP1", "PP3"];
    println!("GB bandwidth sweep on {} (elements/cycle)\n", workload.name);
    print!("{:>10}", "bandwidth");
    for p in presets {
        print!(" {p:>12}");
    }
    println!();

    let mut baseline = None;
    for bw in [512usize, 384, 256, 128, 64, 32] {
        let hw = AccelConfig::paper_default().with_bandwidth(bw);
        print!("{bw:>10}");
        for name in presets {
            let preset = Preset::by_name(name).expect("preset exists");
            let ctx = workload.tile_context(preset.pattern.phase_order);
            let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
                (hw.num_pes / 2, hw.num_pes / 2)
            } else {
                (hw.num_pes, hw.num_pes)
            };
            let df = preset.concretize(&ctx, a, c);
            let report = evaluate(&workload, &df, &hw).expect("legal dataflow");
            if bw == 512 && name == "Seq1" {
                baseline = Some(report.total_cycles);
            }
            let norm = report.total_cycles as f64 / baseline.expect("Seq1@512 first") as f64;
            print!(" {norm:>12.3}");
        }
        println!();
    }
    println!("\n(values normalised to Seq1 at 512 elements/cycle, as in Fig. 16)");
}
