//! Functional end-to-end GCN layer: numeric inference plus dataflow costing.
//!
//! Runs `X1 = ReLU((A · X0) · W)` numerically with the reference kernels,
//! verifies that executing the same layer in an arbitrary dataflow's tile order
//! produces identical results (a dataflow only reorders computation), and then
//! costs every Table V dataflow for the layer.
//!
//! ```sh
//! cargo run --release --example gcn_layer
//! ```

use omega_gnn::accel::functional::{execute_gemm, execute_spmm};
use omega_gnn::prelude::*;

fn main() {
    // A small molecular batch so the functional pass is instant.
    let dataset = DatasetSpec::mutag().generate(7);
    let graph = &dataset.graph;
    let workload = GnnWorkload::gcn_layer(&dataset, 16);
    println!("GCN layer over {}: V={}, F={}, G={}", workload.name, workload.v, workload.f, workload.g);

    // --- numeric inference with the reference kernels -----------------------
    let x0 = graph.features(1); // deterministic synthetic features
    let w = DenseMatrix::from_fn(workload.f, workload.g, |i, j| {
        (((i * 7 + j * 13) % 5) as f32 - 2.0) / 2.0
    });
    let h = ops::spmm(graph.adjacency(), &x0).expect("shapes agree");
    let x1 = ops::gemm(&h, &w).expect("shapes agree");
    let relu = DenseMatrix::from_fn(x1.rows(), x1.cols(), |i, j| x1.get(i, j).max(0.0));
    println!("output: {}x{} features, Frobenius norm {:.2}", relu.rows(), relu.cols(), relu.frobenius_norm());

    // --- a dataflow is only a schedule: same numbers in tile order ----------
    let hw = AccelConfig::paper_default();
    let preset = Preset::by_name("SP2").expect("preset exists");
    let ctx = workload.tile_context(preset.pattern.phase_order);
    let df = preset.concretize(&ctx, hw.num_pes, hw.num_pes);
    let h_tiled = execute_spmm(graph.adjacency(), &x0, &df.agg);
    let x1_tiled = execute_gemm(&h_tiled, &w, &df.cmb);
    assert!(
        x1_tiled.allclose(&x1, 1e-5, 1e-5),
        "dataflow execution must match the reference"
    );
    println!("functional check: {} reproduces the reference result exactly", df);

    // --- cost every Table V dataflow for this layer --------------------------
    println!("\n{:<8} {:>12} {:>10} {:>12}", "dataflow", "cycles", "vs Seq1", "energy (uJ)");
    let mut baseline = None;
    for preset in Preset::all() {
        let ctx = workload.tile_context(preset.pattern.phase_order);
        let (a, c) = if preset.pattern.inter == InterPhase::ParallelPipeline {
            (hw.num_pes / 2, hw.num_pes / 2)
        } else {
            (hw.num_pes, hw.num_pes)
        };
        let df = preset.concretize(&ctx, a, c);
        let report = evaluate(&workload, &df, &hw).expect("legal dataflow");
        let norm = match &baseline {
            None => {
                baseline = Some(report.total_cycles);
                1.0
            }
            Some(b) => report.total_cycles as f64 / *b as f64,
        };
        println!(
            "{:<8} {:>12} {:>10.3} {:>12.3}",
            preset.name,
            report.total_cycles,
            norm,
            report.energy.total_uj()
        );
    }
}
